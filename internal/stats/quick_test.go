package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var quickCfg = &quick.Config{MaxCount: 200}

// boundedSlice converts raw fuzz input into a usable sample slice.
func boundedSlice(raw []float64) []float64 {
	out := raw[:0:0]
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e9))
	}
	return out
}

func TestQuickSummaryMergeEqualsAddAll(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a, b := boundedSlice(rawA), boundedSlice(rawB)
		var merged, whole Summary
		var left, right Summary
		left.AddAll(a)
		right.AddAll(b)
		merged = left
		merged.Merge(&right)
		whole.AddAll(append(append([]float64{}, a...), b...))
		if merged.N() != whole.N() {
			return false
		}
		if merged.N() == 0 {
			return true
		}
		meanOK := math.Abs(merged.Mean()-whole.Mean()) <= 1e-6*(1+math.Abs(whole.Mean()))
		varOK := math.Abs(merged.Var()-whole.Var()) <= 1e-5*(1+whole.Var())
		return meanOK && varOK
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundedSlice(raw)
		if len(xs) == 0 {
			return true
		}
		var s Summary
		s.AddAll(xs)
		if s.Min() > s.Mean()+1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		return s.Var() >= -1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSmoothingStaysInRange(t *testing.T) {
	// Each smoothed value is an average of inputs, so it must lie within
	// [min, max] of the inputs, and counts never go negative.
	f := func(raw []float64, window uint8) bool {
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = math.Abs(math.Mod(v, 1e6))
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		sm := SmoothMovingAverage(xs, int(window%16))
		if len(sm) != len(xs) {
			return false
		}
		for _, v := range sm {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSmoothingWindowOneIsIdentity(t *testing.T) {
	f := func(raw []float64) bool {
		xs := boundedSlice(raw)
		sm := SmoothMovingAverage(xs, 1)
		for i := range xs {
			if sm[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramClampsEverything(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		bins := 1 + int(binsRaw%64)
		h, err := NewHistogram(0, 100, bins)
		if err != nil {
			return false
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		var counted int64
		for _, c := range h.Counts {
			if c < 0 {
				return false
			}
			counted += int64(c)
		}
		return counted == h.Total()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := boundedSlice(raw)
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw%101) / 100
		v, err := Quantile(xs, q)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKSSelfSimilarity(t *testing.T) {
	// Samples drawn FROM a uniform must not be rejected against it (at a
	// loose level, across many seeds).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = r.Float64()
		}
		_, p, err := KolmogorovSmirnov(xs, func(x float64) float64 {
			switch {
			case x < 0:
				return 0
			case x > 1:
				return 1
			default:
				return x
			}
		})
		if err != nil {
			return false
		}
		return p > 1e-6 // essentially never rejected this hard
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
