package stats

import (
	"math"
	"math/rand"
	"testing"
)

func expCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 10
	}
	d, p, err := KolmogorovSmirnov(xs, expCDF(10))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("KS rejected matching distribution: D=%v p=%v", d, p)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 10
	}
	_, p, err := KolmogorovSmirnov(xs, expCDF(30))
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("KS failed to reject wrong distribution: p=%v", p)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, _, err := KolmogorovSmirnov(nil, expCDF(1)); err == nil {
		t.Error("expected error on empty sample")
	}
}

func TestKSTwoSampleSame(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	d, p, err := KolmogorovSmirnovTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("two-sample KS rejected identical distributions: D=%v p=%v", d, p)
	}
}

func TestKSTwoSampleDifferent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1
	}
	_, p, err := KolmogorovSmirnovTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("two-sample KS failed to reject shifted distributions: p=%v", p)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, _, err := KolmogorovSmirnovTwoSample(nil, []float64{1}); err == nil {
		t.Error("expected error on empty sample")
	}
}

func TestChiSquareUniform(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const bins, n = 10, 10000
	obs := make([]float64, bins)
	exp := make([]float64, bins)
	for i := 0; i < n; i++ {
		obs[r.Intn(bins)]++
	}
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	chi2, dof, p, err := ChiSquare(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dof != bins-1 {
		t.Errorf("dof = %d, want %d", dof, bins-1)
	}
	if p < 0.005 {
		t.Errorf("chi-square rejected uniform sample: chi2=%v p=%v", chi2, p)
	}
}

func TestChiSquareRejectsSkew(t *testing.T) {
	obs := []float64{900, 10, 10, 10, 70}
	exp := []float64{200, 200, 200, 200, 200}
	_, _, p, err := ChiSquare(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("chi-square failed to reject skewed sample: p=%v", p)
	}
}

func TestChiSquarePoolsSmallBins(t *testing.T) {
	obs := []float64{1, 1, 1, 1, 96}
	exp := []float64{1, 1, 1, 1, 96}
	chi2, dof, p, err := ChiSquare(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 != 0 {
		t.Errorf("identical obs/exp should give chi2=0, got %v", chi2)
	}
	if dof < 1 {
		t.Errorf("dof = %d, want >= 1", dof)
	}
	if p < 0.99 {
		t.Errorf("p = %v, want ~1", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, _, err := ChiSquare([]float64{1}, []float64{1, 2}, 5); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, _, _, err := ChiSquare(nil, nil, 5); err == nil {
		t.Error("expected error for empty bins")
	}
	if _, _, _, err := ChiSquare([]float64{1}, []float64{1}, 100); err == nil {
		t.Error("expected error when all bins below threshold")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// P(X > 3.84 | 1 dof) ~ 0.05, P(X > 18.31 | 10 dof) ~ 0.05.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{18.307, 10, 0.05},
		{2.706, 1, 0.10},
		{23.209, 10, 0.01},
	}
	for _, c := range cases {
		got := chiSquareSF(c.x, c.k)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("chiSquareSF(%v, %d) = %v, want ~%v", c.x, c.k, got, c.want)
		}
	}
}

func TestKSPValueBounds(t *testing.T) {
	for _, d := range []float64{0, 0.01, 0.5, 1} {
		p := ksPValue(d, 100)
		if p < 0 || p > 1 {
			t.Errorf("ksPValue(%v) = %v outside [0,1]", d, p)
		}
	}
	if ksPValue(0.0001, 10) < 0.99 {
		t.Error("tiny D should give p ~ 1")
	}
	if ksPValue(0.9, 100) > 1e-6 {
		t.Error("huge D should give p ~ 0")
	}
}
