package stats

import (
	"fmt"
)

// Histogram is a fixed-width-bin histogram over [Min, Max). Observations
// outside the range are clamped into the first or last bin, matching the
// thesis Usage Analyzer which plots a fixed axis range.
type Histogram struct {
	Min    float64
	Max    float64
	Counts []float64
	total  int64
}

// NewHistogram returns a histogram with n bins spanning [min, max).
// It returns an error if n < 1 or max <= min.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", n)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]float64, n)}, nil
}

// Add records one observation, clamping out-of-range values into the
// boundary bins.
func (h *Histogram) Add(x float64) {
	i := h.binOf(x)
	h.Counts[i]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	i := int((x - h.Min) / w)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the center x-value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Centers returns the centers of all bins.
func (h *Histogram) Centers() []float64 {
	cs := make([]float64, len(h.Counts))
	for i := range cs {
		cs[i] = h.BinCenter(i)
	}
	return cs
}

// Smoothed returns a copy of the histogram whose counts have been smoothed
// with a centered moving average of the given window (an odd number of bins;
// an even window is widened by one). This reproduces the "after smoothing"
// panels of Figures 5.3-5.5.
func (h *Histogram) Smoothed(window int) *Histogram {
	out := &Histogram{Min: h.Min, Max: h.Max, total: h.total}
	out.Counts = SmoothMovingAverage(h.Counts, window)
	return out
}

// SmoothMovingAverage smooths xs with a centered moving average of the given
// window size. Windows are truncated at the boundaries so mass near the edges
// is averaged over fewer points rather than zero-padded. A window <= 1
// returns a copy of xs.
func SmoothMovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
