package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov runs a one-sample KS test of the samples against the
// theoretical CDF and returns the KS statistic D and an approximate p-value.
// It returns an error for empty input.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (d, p float64, err error) {
	n := len(samples)
	if n == 0 {
		return 0, 0, errors.New("stats: KS test on empty sample")
	}
	xs := make([]float64, n)
	copy(xs, samples)
	sort.Float64s(xs)
	for i, x := range xs {
		f := cdf(x)
		up := float64(i+1)/float64(n) - f
		down := f - float64(i)/float64(n)
		if up > d {
			d = up
		}
		if down > d {
			d = down
		}
	}
	p = ksPValue(d, n)
	return d, p, nil
}

// KolmogorovSmirnovTwoSample runs a two-sample KS test and returns the
// statistic D and approximate p-value. It returns an error if either sample
// is empty.
func KolmogorovSmirnovTwoSample(a, b []float64) (d, p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, errors.New("stats: two-sample KS test with empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	ne := float64(len(as)) * float64(len(bs)) / float64(len(as)+len(bs))
	p = ksPValue(d, int(math.Round(ne)))
	return d, p, nil
}

// ksPValue approximates the p-value of the KS statistic using the asymptotic
// Kolmogorov distribution with the Stephens small-sample correction.
func ksPValue(d float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	sqn := math.Sqrt(float64(n))
	lambda := (sqn + 0.12 + 0.11/sqn) * d
	// The alternating series converges too slowly below ~0.2, where the
	// p-value is 1 to more than 30 decimal places anyway.
	if lambda < 0.2 {
		return 1
	}
	// Q_KS(lambda) = 2 * sum_{k=1..inf} (-1)^{k-1} exp(-2 k^2 lambda^2)
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ChiSquare runs Pearson's chi-square goodness-of-fit test of observed bin
// counts against expected bin counts. Bins with expected count below minExp
// are pooled into their neighbor to keep the approximation valid. It returns
// the statistic, degrees of freedom, and an approximate p-value.
func ChiSquare(observed, expected []float64, minExp float64) (chi2 float64, dof int, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, 0, fmt.Errorf("stats: chi-square length mismatch %d != %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return 0, 0, 0, errors.New("stats: chi-square with no bins")
	}
	// Pool small-expectation bins left to right.
	var obs, exp []float64
	var accO, accE float64
	for i := range observed {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExp {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 && len(exp) > 0 {
		obs[len(obs)-1] += accO
		exp[len(exp)-1] += accE
	} else if len(exp) == 0 {
		return 0, 0, 0, errors.New("stats: all expected counts below threshold")
	}
	for i := range obs {
		d := obs[i] - exp[i]
		chi2 += d * d / exp[i]
	}
	dof = len(obs) - 1
	if dof < 1 {
		dof = 1
	}
	return chi2, dof, chiSquareSF(chi2, dof), nil
}

// chiSquareSF is the chi-square survival function P(X > x) with k degrees of
// freedom, computed via the regularized upper incomplete gamma function.
func chiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaReg(float64(k)/2, x/2)
}

// upperIncompleteGammaReg computes Q(a, x) = Gamma(a, x)/Gamma(a) using the
// series for x < a+1 and the continued fraction otherwise (Numerical Recipes
// style).
func upperIncompleteGammaReg(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaCF(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	lg := logGamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaCF(a, x float64) float64 {
	lg := logGamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
