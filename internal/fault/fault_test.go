package fault

import (
	"errors"
	"testing"

	"uswg/internal/vfs"
)

func mustEngine(t *testing.T, plan *Plan, seed uint64) *Engine {
	t.Helper()
	e, err := NewEngine(plan, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Name: "empty"},
		{Name: "noops", Rules: []Rule{{Name: "r", Prob: 0.5}}},
		{Name: "badop", Rules: []Rule{{Name: "r", Ops: []string{"frobnicate"}, Prob: 0.5}}},
		{Name: "badprob", Rules: []Rule{{Name: "r", Ops: []string{"read"}, Prob: 1.5}}},
		{Name: "badkind", Rules: []Rule{{Name: "r", Ops: []string{"read"}, Prob: 0.5, Err: "enoent"}}},
		{Name: "badpartial", Rules: []Rule{{Name: "r", Ops: []string{"write"}, Prob: 0.5, Partial: 1}}},
		{Name: "partialerr", Rules: []Rule{{Name: "r", Ops: []string{"write"}, Prob: 0.5, Partial: 0.5, Err: EIO}}},
		{Name: "dupname", Rules: []Rule{
			{Name: "r", Ops: []string{"read"}, Prob: 0.5},
			{Name: "r", Ops: []string{"write"}, Prob: 0.5},
		}},
		{Name: "badwindow", Rules: []Rule{{Name: "r", Ops: []string{"read"}, Prob: 0.5, After: 10, Until: 10}}},
	}
	for _, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q: want validation error", p.Name)
		}
	}
	good := Plan{Name: "ok", Rules: []Rule{
		{Name: "a", Ops: []string{"read", "write"}, Prob: 0.1, Err: ENOSPC},
		{Name: "b", Ops: []string{OpNet}, Prob: 0.01, Drop: true},
		{Name: "c", Ops: []string{OpRPC}, Prob: 0.01, Latency: 1e4},
		{Name: "d", Ops: []string{"os.write"}, Prob: 0.2, Err: EINTR},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestDeterministicStreams locks in the determinism contract: two engines
// built from the same (plan, seed) deliver the identical outcome sequence.
func TestDeterministicStreams(t *testing.T) {
	plan := &Plan{Name: "det", Rules: []Rule{
		{Name: "eio", Ops: []string{"read"}, Prob: 0.3, Err: EIO},
		{Name: "spike", Ops: []string{"write"}, Prob: 0.3, Latency: 500},
	}}
	a, b := mustEngine(t, plan, 99), mustEngine(t, plan, 99)
	ops := []string{"read", "write", "read", "read", "write", "read", "write", "write"}
	for i := 0; i < 500; i++ {
		op := ops[i%len(ops)]
		oa, fa := a.Eval(op, float64(i))
		ob, fb := b.Eval(op, float64(i))
		sameErr := (oa.Err == nil) == (ob.Err == nil) &&
			(oa.Err == nil || oa.Err.Error() == ob.Err.Error())
		oa.Err, ob.Err = nil, nil
		if fa != fb || oa != ob || !sameErr {
			t.Fatalf("call %d diverged: (%+v,%v) vs (%+v,%v)", i, oa, fa, ob, fb)
		}
	}
	if a.Injected() == 0 {
		t.Fatal("no faults fired at 30% over 500 calls")
	}
	if a.Injected() != b.Injected() || a.Calls() != b.Calls() {
		t.Fatalf("counters diverged: %d/%d vs %d/%d", a.Injected(), a.Calls(), b.Injected(), b.Calls())
	}
}

// TestRuleStreamsIndependentOfOrder: a rule's draws come from its own named
// stream, so adding an unrelated rule does not perturb its sequence.
func TestRuleStreamsIndependentOfOrder(t *testing.T) {
	solo := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "eio", Ops: []string{"read"}, Prob: 0.2, Err: EIO},
	}}, 7)
	withPeer := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "other", Ops: []string{"mkdir"}, Prob: 0.9, Err: ENOSPC},
		{Name: "eio", Ops: []string{"read"}, Prob: 0.2, Err: EIO},
	}}, 7)
	for i := 0; i < 300; i++ {
		_, fa := solo.Eval("read", 0)
		_, fb := withPeer.Eval("read", 0)
		if fa != fb {
			t.Fatalf("read call %d: solo fired=%v, with peer fired=%v", i, fa, fb)
		}
	}
}

func TestStickyTripsPermanently(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "full", Ops: []string{"write"}, Prob: 1, Err: ENOSPC, Sticky: true, After: 100, Until: 200},
	}}, 1)
	if _, fired := e.Eval("write", 50); fired {
		t.Fatal("fired before its window")
	}
	if _, fired := e.Eval("write", 150); !fired {
		t.Fatal("did not fire inside its window")
	}
	// Sticky: stays tripped even past Until.
	if _, fired := e.Eval("write", 300); !fired {
		t.Fatal("sticky rule released after its window")
	}
}

func TestMaxFiresBoundsTransients(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "glitch", Ops: []string{"read"}, Prob: 1, Err: EIO, MaxFires: 3},
	}}, 1)
	fires := 0
	for i := 0; i < 10; i++ {
		if _, fired := e.Eval("read", 0); fired {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("transient fired %d times, want exactly 3", fires)
	}
}

func TestWildcardSkipsNetAndRPC(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "any", Ops: []string{"*"}, Prob: 1, Err: EIO},
	}}, 1)
	if _, fired := e.Eval("readdir", 0); !fired {
		t.Error("wildcard did not match a vfs op")
	}
	if _, fired := e.Eval("os.write", 0); !fired {
		t.Error("wildcard did not match a host op")
	}
	if _, fired := e.Eval(OpNet, 0); fired {
		t.Error("wildcard matched the net label")
	}
	if _, fired := e.Eval(OpRPC, 0); fired {
		t.Error("wildcard matched the rpc label")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "first", Ops: []string{"read"}, Prob: 1, Err: EIO},
		{Name: "second", Ops: []string{"read"}, Prob: 1, Err: ENOSPC},
	}}, 1)
	out, fired := e.Eval("read", 0)
	if !fired || out.Rule != "first" {
		t.Fatalf("outcome %+v, want rule 'first'", out)
	}
	if !errors.Is(out.Err, vfs.ErrIO) || !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("error %v, want injected EIO", out.Err)
	}
}

// ----------------------------------------------------------------- FS wrapper

func memFSWithFile(t *testing.T) (*vfs.MemFS, vfs.FD) {
	t.Helper()
	m := vfs.NewMemFS()
	ctx := &vfs.ManualClock{}
	sfs := vfs.Sync{FS: m}
	fd, err := sfs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sfs.Write(ctx, fd, 4096); err != nil {
		t.Fatal(err)
	}
	if err := sfs.Close(ctx, fd); err != nil {
		t.Fatal(err)
	}
	fd, err = sfs.Open(ctx, "/f", vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	return m, fd
}

func TestFSErrorChargesLatency(t *testing.T) {
	inner, fd := memFSWithFile(t)
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "eio", Ops: []string{"read"}, Prob: 1, Err: EIO, Latency: 250},
	}}, 1)
	ffs := vfs.Sync{FS: NewFS(inner, e)}
	ctx := &vfs.ManualClock{}
	_, err := ffs.Read(ctx, fd, 100)
	if !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("read error %v, want EIO", err)
	}
	if ctx.T != 250 {
		t.Errorf("charged %v µs, want 250", ctx.T)
	}
}

func TestFSPartialWriteIsShortNotFailed(t *testing.T) {
	inner, fd := memFSWithFile(t)
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "short", Ops: []string{"write"}, Prob: 1, Partial: 0.25},
	}}, 1)
	ffs := vfs.Sync{FS: NewFS(inner, e)}
	got, err := ffs.Write(&vfs.ManualClock{}, fd, 1000)
	if err != nil {
		t.Fatalf("short write failed: %v", err)
	}
	if got != 250 {
		t.Errorf("short write transferred %d, want 250", got)
	}
}

func TestFSCloseNeverErrors(t *testing.T) {
	inner, fd := memFSWithFile(t)
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "any", Ops: []string{"*"}, Prob: 1, Err: EIO, Latency: 100},
	}}, 1)
	ffs := vfs.Sync{FS: NewFS(inner, e)}
	ctx := &vfs.ManualClock{}
	if err := ffs.Close(ctx, fd); err != nil {
		t.Fatalf("close failed under an error rule: %v", err)
	}
}

func TestFSLatencySpikeForwards(t *testing.T) {
	inner, fd := memFSWithFile(t)
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "spike", Ops: []string{"read"}, Prob: 1, Latency: 5000},
	}}, 1)
	ffs := vfs.Sync{FS: NewFS(inner, e)}
	ctx := &vfs.ManualClock{}
	got, err := ffs.Read(ctx, fd, 128)
	if err != nil || got != 128 {
		t.Fatalf("spiked read = (%d, %v), want (128, nil)", got, err)
	}
	if ctx.T < 5000 {
		t.Errorf("charged %v µs, want >= 5000", ctx.T)
	}
}

// TestCloseDoesNotConsumeErrorRules: Close cannot deliver an error, so an
// error rule matching close must keep its stream and fire budget for calls
// that can.
func TestCloseDoesNotConsumeErrorRules(t *testing.T) {
	inner, fd := memFSWithFile(t)
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "any", Ops: []string{"*"}, Prob: 1, Err: EIO, MaxFires: 1},
	}}, 1)
	ffs := vfs.Sync{FS: NewFS(inner, e)}
	ctx := &vfs.ManualClock{}
	if err := ffs.Close(ctx, fd); err != nil {
		t.Fatalf("close failed: %v", err)
	}
	if e.Injected() != 0 {
		t.Fatalf("close consumed %d firings of an error rule", e.Injected())
	}
	// The single firing is still available for an op that can error.
	fd2, err := ffs.Open(ctx, "/f", vfs.ReadOnly)
	if !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("open = (%v, %v), want the preserved EIO firing", fd2, err)
	}
}

// TestOSHookPairSingleDraw: OSBefore performs the attempt's one engine
// evaluation and hands a partial outcome to OSChunk — two hook calls, one
// draw, one firing.
func TestOSHookPairSingleDraw(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "short", Ops: []string{"os.write"}, Prob: 1, Partial: 0.5, MaxFires: 1},
	}}, 1)
	before, chunk := e.OSBefore(), e.OSChunk()
	if err := before("write", "/f"); err != nil {
		t.Fatalf("partial rule surfaced as an error: %v", err)
	}
	if got := chunk("write", 1000); got != 500 {
		t.Errorf("chunk = %d, want 500 (the stashed partial applied)", got)
	}
	if e.Injected() != 1 {
		t.Errorf("injected = %d, want exactly 1 for the Before/Chunk pair", e.Injected())
	}
	// The fraction is consumed: the next chunk passes through untouched.
	if got := chunk("write", 1000); got != 1000 {
		t.Errorf("second chunk = %d, want 1000 (pending partial cleared)", got)
	}
}

// ------------------------------------------------------------------ adapters

func TestMessageAdapter(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "drop", Ops: []string{OpNet}, Prob: 1, Drop: true},
	}}, 1)
	drop, delay := e.Message(0)
	if !drop || delay != 0 {
		t.Fatalf("Message = (%v, %v), want (true, 0)", drop, delay)
	}

	slow := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "slow", Ops: []string{OpNet}, Prob: 1, Latency: 300},
	}}, 1)
	drop, delay = slow.Message(0)
	if drop || delay != 300 {
		t.Fatalf("Message = (%v, %v), want (false, 300)", drop, delay)
	}
}

func TestStallAdapter(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "stall", Ops: []string{OpRPC}, Prob: 1, Latency: 2e4},
	}}, 1)
	if s := e.Stall(0); s != 2e4 {
		t.Fatalf("Stall = %v, want 20000", s)
	}
	if s := e.Stall(0); s != 2e4 {
		t.Fatalf("second Stall = %v, want 20000", s)
	}
}

func TestFiresByRule(t *testing.T) {
	e := mustEngine(t, &Plan{Name: "p", Rules: []Rule{
		{Name: "a", Ops: []string{"read"}, Prob: 1, Err: EIO, MaxFires: 2},
		{Name: "b", Ops: []string{"write"}, Prob: 1, Err: ENOSPC},
	}}, 1)
	for i := 0; i < 4; i++ {
		e.Eval("read", 0)
		e.Eval("write", 0)
	}
	got := e.FiresByRule()
	if len(got) != 2 || got[0].Rule != "a" || got[0].Fires != 2 || got[1].Rule != "b" || got[1].Fires != 4 {
		t.Fatalf("FiresByRule = %+v", got)
	}
}

func TestBurstValidation(t *testing.T) {
	bad := []Plan{
		{Name: "enter0", Rules: []Rule{{Name: "b", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0, PExit: 0.5}}}},
		{Name: "exit2", Rules: []Rule{{Name: "b", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0.1, PExit: 2}}}},
		{Name: "loss2", Rules: []Rule{{Name: "b", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0.1, PExit: 0.5, Loss: 2}}}},
		{Name: "probtoo", Rules: []Rule{{Name: "b", Ops: []string{OpNet}, Drop: true, Prob: 0.1, Burst: &Burst{PEnter: 0.1, PExit: 0.5}}}},
		{Name: "sticky", Rules: []Rule{{Name: "b", Ops: []string{OpNet}, Drop: true, Sticky: true, Burst: &Burst{PEnter: 0.1, PExit: 0.5}}}},
	}
	for _, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q: want validation error", p.Name)
		}
	}
	ok := Plan{Name: "ok", Rules: []Rule{
		{Name: "b", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0.01, PExit: 0.2, Loss: 0.9}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("good burst plan rejected: %v", err)
	}
}

// TestBurstLossesAreCorrelated drives many messages through a burst rule and
// checks the Gilbert-Elliott shape: losses clump into runs whose mean length
// tracks 1/p_exit, far longer than an independent draw at the same overall
// rate would produce.
func TestBurstLossesAreCorrelated(t *testing.T) {
	const n = 200000
	e := mustEngine(t, &Plan{Name: "wire", Rules: []Rule{
		{Name: "burst", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0.005, PExit: 0.1}},
	}}, 42)
	losses := 0
	runs := 0
	inRun := false
	runLen := 0
	var runLens []int
	for i := 0; i < n; i++ {
		drop, _ := e.Message(float64(i))
		if drop {
			losses++
			if !inRun {
				runs++
				inRun = true
				runLen = 0
			}
			runLen++
		} else if inRun {
			inRun = false
			runLens = append(runLens, runLen)
		}
	}
	if losses == 0 || runs == 0 {
		t.Fatalf("no bursts fired (losses=%d runs=%d)", losses, runs)
	}
	var sum int
	for _, l := range runLens {
		sum += l
	}
	mean := float64(sum) / float64(len(runLens))
	// Mean burst length should approximate 1/p_exit = 10 calls; an
	// independent draw at the same loss rate would average ~1.05.
	if mean < 5 || mean > 20 {
		t.Errorf("mean burst length = %.2f, want ~10", mean)
	}
	// Overall loss rate approximates the chain's stationary bad-state
	// share p_enter/(p_enter+p_exit) ≈ 4.8%.
	rate := float64(losses) / n
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("loss rate = %.3f, want ~0.048", rate)
	}
}

// TestBurstDeterministic reproduces the same burst sequence for the same
// (seed, plan).
func TestBurstDeterministic(t *testing.T) {
	mk := func() []bool {
		e := mustEngine(t, &Plan{Name: "wire", Rules: []Rule{
			{Name: "burst", Ops: []string{OpNet}, Drop: true, Burst: &Burst{PEnter: 0.02, PExit: 0.2}},
		}}, 7)
		out := make([]bool, 2000)
		for i := range out {
			out[i], _ = e.Message(float64(i))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("burst sequences diverge at call %d", i)
		}
	}
}

func TestOutageValidation(t *testing.T) {
	bad := []Plan{
		{Name: "backwards", ServerOutages: []Outage{{Start: 10, End: 5}}},
		{Name: "negative", ServerOutages: []Outage{{Start: -1, End: 5}}},
		{Name: "lowcap", ServerOutages: []Outage{{Start: 0, End: 5}},
			NetTimeout: 1000, NetMaxTimeout: 500},
		{Name: "badbackoff", ServerOutages: []Outage{{Start: 0, End: 5}}, NetBackoff: 0.5},
	}
	for _, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q: want validation error", p.Name)
		}
	}
	// A rules-free plan is valid when it carries outages: the outage is the
	// whole fault.
	good := Plan{Name: "outage-only", ServerOutages: []Outage{{Start: 10, End: 20}},
		NetTimeout: 100, NetBackoff: 2, NetMaxTimeout: 800, NetHard: true}
	if err := good.Validate(); err != nil {
		t.Errorf("outage-only plan rejected: %v", err)
	}
}

func TestOutageWindowSwallowsMessages(t *testing.T) {
	plan := &Plan{Name: "outage", ServerOutages: []Outage{{Start: 100, End: 200}}}
	e := mustEngine(t, plan, 7)
	for _, tc := range []struct {
		now  float64
		drop bool
	}{{99, false}, {100, true}, {150, true}, {199.9, true}, {200, false}, {300, false}} {
		drop, delay := e.Message(tc.now)
		if drop != tc.drop || delay != 0 {
			t.Errorf("Message(%v) = (%v, %v), want (%v, 0)", tc.now, drop, delay, tc.drop)
		}
	}
	if e.OutageDrops() != 3 {
		t.Errorf("outage drops = %d, want 3", e.OutageDrops())
	}
}

// TestOutageDoesNotDisturbRuleStreams: swallowing calls during an outage
// must consume nothing from the rules' rng streams — the post-outage drop
// sequence is identical with or without an outage preceding it.
func TestOutageDoesNotDisturbRuleStreams(t *testing.T) {
	// Same plan name in both engines: rule streams derive from
	// (seed, plan name, rule name), and only the outage set may differ.
	rules := []Rule{{Name: "drop", Ops: []string{OpNet}, Prob: 0.5, Drop: true}}
	withOutage := mustEngine(t, &Plan{Name: "same", Rules: rules,
		ServerOutages: []Outage{{Start: 0, End: 100}}}, 42)
	plain := mustEngine(t, &Plan{Name: "same", Rules: rules}, 42)
	// Burn calls inside the outage window.
	for i := 0; i < 50; i++ {
		if drop, _ := withOutage.Message(50); !drop {
			t.Fatal("message inside the outage must drop")
		}
	}
	// After the window, both engines must agree call for call.
	for i := 0; i < 200; i++ {
		gotDrop, gotDelay := withOutage.Message(200)
		wantDrop, wantDelay := plain.Message(200)
		if gotDrop != wantDrop || gotDelay != wantDelay {
			t.Fatalf("call %d diverges after outage: (%v,%v) vs (%v,%v)",
				i, gotDrop, gotDelay, wantDrop, wantDelay)
		}
	}
}
