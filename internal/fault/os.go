package fault

import (
	"fmt"
	"syscall"
	"time"
)

// Host-level adapters: the realfs adapter accepts plain function hooks
// (realfs.Hooks), and these constructors bind them to an engine. The hooks
// return real syscall errnos so realfs exercises exactly the handling a
// hostile host file system would demand — EINTR retry loops, ENOSPC
// mid-write cleanup, short writes.
//
// Rules fire against "os."-prefixed labels ("os.read", "os.write", ...), so
// a plan can degrade the host adapter without touching simulated layers. The
// engine clock for host rules is wall time since the engine's first host
// evaluation (activation windows are rarely useful here; probability and
// MaxFires are the natural knobs).

// osErrno maps an error kind to the host errno.
func osErrno(kind string) error {
	switch kind {
	case ENOSPC:
		return syscall.ENOSPC
	case EINTR:
		return syscall.EINTR
	case EIO:
		return syscall.EIO
	default:
		return syscall.EINVAL
	}
}

// osNow returns seconds→µs wall time since start for rule windows.
func (e *Engine) osNow() float64 {
	e.mu.Lock()
	if e.osStart.IsZero() {
		//wlint:allow rngdiscipline realfs fault windows run against the host clock; the DES path uses Ctx.Now
		e.osStart = time.Now()
	}
	start := e.osStart
	e.mu.Unlock()
	return float64(time.Since(start)) / float64(time.Microsecond)
}

// OSBefore returns a realfs.Hooks.Before-compatible hook: consulted ahead of
// each host syscall attempt, a non-nil return is treated as that attempt's
// own failure. Latency rules sleep (wall-clock adapters live in real time).
//
// OSBefore performs the single engine evaluation for the attempt; a fired
// partial rule has no error to return here, so its fraction is stashed for
// the OSChunk hook that realfs consults next in the same loop iteration.
// The two hooks are a pair — install both (realfs calls Before then Chunk
// under one lock, so the handoff cannot interleave between data transfers).
func (e *Engine) OSBefore() func(op, path string) error {
	return func(op, path string) error {
		out, fired := e.Eval("os."+op, e.osNow())
		e.mu.Lock()
		e.osPartial = 0
		if fired {
			e.osPartial = out.Partial
		}
		e.mu.Unlock()
		if !fired {
			return nil
		}
		if out.Latency > 0 {
			time.Sleep(time.Duration(out.Latency * float64(time.Microsecond)))
		}
		if out.Err == nil {
			return nil
		}
		return fmt.Errorf("%w: os.%s %s: %w", ErrInjected, op, path, osErrno(out.Kind))
	}
}

// OSChunk returns a realfs.Hooks.Chunk-compatible hook: it applies the
// partial fraction the paired OSBefore evaluation stashed, shortening one
// data-transfer chunk (a short read or write the adapter must absorb by
// looping). It never evaluates the engine itself — one attempt, one draw.
func (e *Engine) OSChunk() func(op string, n int) int {
	return func(op string, n int) int {
		e.mu.Lock()
		p := e.osPartial
		e.osPartial = 0
		e.mu.Unlock()
		if p <= 0 || n <= 1 {
			return n
		}
		return int(short(int64(n), p))
	}
}
