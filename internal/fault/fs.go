package fault

import (
	"fmt"

	"uswg/internal/vfs"
)

// FS wraps a vfs.FileSystem and applies a fault engine to every call: fired
// error rules abort the operation (after charging the rule's latency — a
// failed call that burned a round trip), fired latency rules delay it, and
// fired partial rules shorten the data transfer (a short write, delivered
// without error per UNIX semantics). The passthrough path costs one engine
// evaluation and nothing else.
//
// Wrap only the measured file system: setup (FSC) and cache warming should
// run against the clean inner FS so faults perturb the experiment, not its
// construction.
type FS struct {
	inner vfs.FileSystem
	eng   *Engine
}

var _ vfs.FileSystem = (*FS)(nil)

// NewFS wraps inner with the engine's fault plan.
func NewFS(inner vfs.FileSystem, eng *Engine) *FS {
	return &FS{inner: inner, eng: eng}
}

// Engine returns the engine deciding this wrapper's faults.
func (f *FS) Engine() *Engine { return f.eng }

// Crash forwards a workstation crash to the wrapped file system when it
// models one (vfs.Crasher), so the lifecycle engine can cold-boot a client
// through the fault wrapper. A crash is not a call: no rule evaluates.
func (f *FS) Crash() {
	if cr, ok := f.inner.(vfs.Crasher); ok {
		cr.Crash()
	}
}

var _ vfs.Crasher = (*FS)(nil)

// fail charges the outcome's latency, then delivers its error.
func fail(ctx vfs.Ctx, out Outcome, target string, k func(error)) {
	err := fmt.Errorf("%w: %s", out.Err, target)
	if out.Latency > 0 {
		ctx.Hold(out.Latency, func() { k(err) })
		return
	}
	k(err)
}

// Mkdir injects or forwards.
func (f *FS) Mkdir(ctx vfs.Ctx, path string, k func(error)) {
	if out, fired := f.eng.Eval("mkdir", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, k)
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Mkdir(ctx, path, k) })
		return
	}
	f.inner.Mkdir(ctx, path, k)
}

// Create injects or forwards.
func (f *FS) Create(ctx vfs.Ctx, path string, k func(vfs.FD, error)) {
	if out, fired := f.eng.Eval("create", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, func(err error) { k(0, err) })
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Create(ctx, path, k) })
		return
	}
	f.inner.Create(ctx, path, k)
}

// Open injects or forwards.
func (f *FS) Open(ctx vfs.Ctx, path string, mode vfs.OpenMode, k func(vfs.FD, error)) {
	if out, fired := f.eng.Eval("open", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, func(err error) { k(0, err) })
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Open(ctx, path, mode, k) })
		return
	}
	f.inner.Open(ctx, path, mode, k)
}

// short applies a partial outcome to a transfer size: at least one byte, at
// most n-1, so a short transfer makes progress yet stays short.
func short(n int64, fraction float64) int64 {
	cut := int64(float64(n) * fraction)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	if cut < 1 {
		cut = 1 // n == 1: nothing to shorten
	}
	return cut
}

// Read injects, shortens, or forwards.
func (f *FS) Read(ctx vfs.Ctx, fd vfs.FD, n int64, k func(int64, error)) {
	if out, fired := f.eng.Eval("read", ctx.Now()); fired {
		switch {
		case out.Err != nil:
			fail(ctx, out, fmt.Sprintf("fd %d", fd), func(err error) { k(0, err) })
			return
		case out.Partial > 0 && n > 1:
			n = short(n, out.Partial)
		}
		if out.Latency > 0 {
			nn := n
			ctx.Hold(out.Latency, func() { f.inner.Read(ctx, fd, nn, k) })
			return
		}
	}
	f.inner.Read(ctx, fd, n, k)
}

// Write injects, shortens, or forwards.
func (f *FS) Write(ctx vfs.Ctx, fd vfs.FD, n int64, k func(int64, error)) {
	if out, fired := f.eng.Eval("write", ctx.Now()); fired {
		switch {
		case out.Err != nil:
			fail(ctx, out, fmt.Sprintf("fd %d", fd), func(err error) { k(0, err) })
			return
		case out.Partial > 0 && n > 1:
			n = short(n, out.Partial)
		}
		if out.Latency > 0 {
			nn := n
			ctx.Hold(out.Latency, func() { f.inner.Write(ctx, fd, nn, k) })
			return
		}
	}
	f.inner.Write(ctx, fd, n, k)
}

// Seek injects or forwards.
func (f *FS) Seek(ctx vfs.Ctx, fd vfs.FD, offset int64, whence int, k func(int64, error)) {
	if out, fired := f.eng.Eval("seek", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, fmt.Sprintf("fd %d", fd), func(err error) { k(0, err) })
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Seek(ctx, fd, offset, whence, k) })
		return
	}
	f.inner.Seek(ctx, fd, offset, whence, k)
}

// Close never injects errors: leaking descriptors on a failed close would
// conflate fault handling with resource exhaustion. Only pure latency rules
// are even evaluated (a slow close-to-open consistency flush), so error
// rules matching close keep their streams and fire budgets intact.
func (f *FS) Close(ctx vfs.Ctx, fd vfs.FD, k func(error)) {
	if out, fired := f.eng.EvalLatencyOnly("close", ctx.Now()); fired && out.Latency > 0 {
		ctx.Hold(out.Latency, func() { f.inner.Close(ctx, fd, k) })
		return
	}
	f.inner.Close(ctx, fd, k)
}

// Unlink injects or forwards.
func (f *FS) Unlink(ctx vfs.Ctx, path string, k func(error)) {
	if out, fired := f.eng.Eval("unlink", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, k)
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Unlink(ctx, path, k) })
		return
	}
	f.inner.Unlink(ctx, path, k)
}

// Stat injects or forwards.
func (f *FS) Stat(ctx vfs.Ctx, path string, k func(vfs.FileInfo, error)) {
	if out, fired := f.eng.Eval("stat", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, func(err error) { k(vfs.FileInfo{}, err) })
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.Stat(ctx, path, k) })
		return
	}
	f.inner.Stat(ctx, path, k)
}

// ReadDir injects or forwards.
func (f *FS) ReadDir(ctx vfs.Ctx, path string, k func([]string, error)) {
	if out, fired := f.eng.Eval("readdir", ctx.Now()); fired {
		if out.Err != nil {
			fail(ctx, out, path, func(err error) { k(nil, err) })
			return
		}
		ctx.Hold(out.Latency, func() { f.inner.ReadDir(ctx, path, k) })
		return
	}
	f.inner.ReadDir(ctx, path, k)
}
