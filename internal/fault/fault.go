// Package fault is the deterministic, seeded fault-plan engine: it decides,
// call by call, whether a fault fires at any of the workload generator's
// suspendable layers — the vfs file systems (package vfs via the FS wrapper),
// the host file system adapter (package realfs via os-level hooks), the
// shared network link (netsim.Link's Faulter hook, modelling NFS soft/hard
// mount retry), and the simulated NFS server (the Staller hook, modelling a
// stalled nfsd).
//
// A Plan composes Rules. Each rule selects the operations it applies to,
// fires with a per-call probability inside an optional virtual-time window,
// and injects one of: an errno-style error (ENOSPC, EINTR, EIO), a latency
// spike, a partial (short) transfer, or a dropped network message. Rules can
// be transient (MaxFires bounds total firings) or sticky (once fired, every
// later matching call fires too — a disk that stays full).
//
// Determinism contract: every rule draws from its own rng stream derived
// from the engine seed and the rule's name (rng.Derive). Under the DES
// kernel the whole simulation is single-threaded and calls arrive in
// deterministic order, so a run's fault sequence is a pure function of
// (seed, plan) — experiment output stays byte-identical at any sweep
// parallelism, because parallel sweep points construct independent engines.
//
// In the DES→workload→trace→analysis pipeline faults are a cross-cutting
// layer at the DES/workload boundary: they perturb operations in flight,
// and the trace records the damage for the fault5.x analyses.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"uswg/internal/rng"
	"uswg/internal/vfs"
)

// Injected error kinds, errno-style.
const (
	ENOSPC = "enospc" // no space left on device
	EINTR  = "eintr"  // interrupted system call
	EIO    = "eio"    // input/output error
)

// Operation labels beyond the vfs system calls. The FS wrapper passes vfs op
// names ("open", "read", ...); the network and server attach points ask for
// these labels explicitly, and the realfs hooks prefix host syscalls with
// "os." ("os.write", ...). The "*" wildcard matches any vfs-level op (plain
// and "os."-prefixed) but never the net/rpc labels — a plan that degrades
// every file operation should not silently also drop packets.
const (
	OpNet = "net" // one message on the shared link
	OpRPC = "rpc" // one RPC arriving at the NFS server
)

var vfsOps = map[string]bool{
	"mkdir": true, "create": true, "open": true, "read": true, "write": true,
	"seek": true, "close": true, "unlink": true, "stat": true, "readdir": true,
}

// ErrInjected marks every error produced by the engine, so tests and
// analyzers can tell injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Burst makes a rule's firing correlated in time: a two-state
// Gilbert-Elliott chain (good wire / bad wire) advanced once per matching
// call. In the good state the rule never fires; in the bad state it fires
// with probability Loss (default 1). Mean sojourn lengths are 1/PEnter calls
// of clean wire and 1/PExit calls of burst, so losses arrive in clumps the
// way interference and congestion produce them — unlike an independent
// per-call Prob, which spreads the same loss rate evenly.
type Burst struct {
	// PEnter is the per-call probability of the good→bad transition.
	PEnter float64 `json:"p_enter"`
	// PExit is the per-call probability of the bad→good transition.
	PExit float64 `json:"p_exit"`
	// Loss is the firing probability while in the bad state (0 means 1:
	// every call inside a burst is hit).
	Loss float64 `json:"loss,omitempty"`
}

// Validate checks the burst parameters.
func (b *Burst) Validate(rule string) error {
	if b.PEnter <= 0 || b.PEnter > 1 {
		return fmt.Errorf("fault: rule %q: burst p_enter %v out of (0, 1]", rule, b.PEnter)
	}
	if b.PExit <= 0 || b.PExit > 1 {
		return fmt.Errorf("fault: rule %q: burst p_exit %v out of (0, 1]", rule, b.PExit)
	}
	if b.Loss < 0 || b.Loss > 1 {
		return fmt.Errorf("fault: rule %q: burst loss %v out of [0, 1]", rule, b.Loss)
	}
	return nil
}

// Rule is one composable fault source inside a Plan.
type Rule struct {
	// Name labels the rule and seeds its private rng stream; names must be
	// unique within a plan.
	Name string `json:"name"`
	// Ops lists the operation labels the rule applies to: vfs op names,
	// "os."-prefixed host syscalls, OpNet, OpRPC, or "*" (any vfs-level op).
	Ops []string `json:"ops"`
	// Prob is the per-call firing probability in [0, 1]. Mutually exclusive
	// with Burst, which replaces the independent draw with a correlated one.
	Prob float64 `json:"prob"`

	// Burst replaces the independent per-call Prob draw with a
	// Gilbert-Elliott good/bad chain: firings arrive in correlated bursts
	// (see Burst). Nil keeps the independent draw.
	Burst *Burst `json:"burst,omitempty"`

	// Err injects an errno-style error when the rule fires: ENOSPC, EINTR,
	// or EIO. Empty means no error (a pure latency/partial/drop rule).
	Err string `json:"err,omitempty"`
	// Latency is charged to the caller whenever the rule fires, µs — the
	// cost of a failed round trip, a latency spike on a slow call, the
	// stall length at the server, or the extra delay of a slow message.
	Latency float64 `json:"latency_us,omitempty"`
	// Partial, in (0, 1), shortens a data transfer to that fraction of the
	// requested bytes (a short write, per UNIX semantics without error).
	Partial float64 `json:"partial,omitempty"`
	// Drop marks a fired OpNet rule as a lost message: the sender times out
	// and retransmits (netsim charges the timeout and retries).
	Drop bool `json:"drop,omitempty"`

	// Sticky makes the rule permanent once it first fires: every later
	// matching call fires too (ENOSPC that does not go away). Transient
	// faults leave Sticky false.
	Sticky bool `json:"sticky,omitempty"`
	// MaxFires bounds the total number of firings (0 means unlimited); a
	// bounded rule models a transient glitch that clears.
	MaxFires int `json:"max_fires,omitempty"`
	// After activates the rule only at or after this virtual time, µs.
	After float64 `json:"after_us,omitempty"`
	// Until deactivates the rule at or after this virtual time, µs
	// (0 means never). A sticky rule stays tripped past Until.
	Until float64 `json:"until_us,omitempty"`
}

// matches reports whether the rule applies to the operation label.
func (r *Rule) matches(op string) bool {
	for _, o := range r.Ops {
		if o == op {
			return true
		}
		if o == "*" && op != OpNet && op != OpRPC {
			return true
		}
	}
	return false
}

// Validate checks the rule.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return errors.New("fault: rule with empty name")
	}
	if len(r.Ops) == 0 {
		return fmt.Errorf("fault: rule %q selects no ops", r.Name)
	}
	for _, o := range r.Ops {
		switch {
		case o == "*" || o == OpNet || o == OpRPC || vfsOps[o]:
		case len(o) > 3 && o[:3] == "os." && vfsOps[o[3:]]:
		default:
			return fmt.Errorf("fault: rule %q: unknown op %q", r.Name, o)
		}
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule %q: prob %v out of [0, 1]", r.Name, r.Prob)
	}
	if r.Burst != nil {
		if r.Prob != 0 {
			return fmt.Errorf("fault: rule %q: prob and burst are mutually exclusive", r.Name)
		}
		if r.Sticky {
			return fmt.Errorf("fault: rule %q: sticky and burst are mutually exclusive", r.Name)
		}
		if err := r.Burst.Validate(r.Name); err != nil {
			return err
		}
	}
	switch r.Err {
	case "", ENOSPC, EINTR, EIO:
	default:
		return fmt.Errorf("fault: rule %q: unknown error kind %q", r.Name, r.Err)
	}
	if r.Latency < 0 {
		return fmt.Errorf("fault: rule %q: negative latency %v", r.Name, r.Latency)
	}
	if r.Partial < 0 || r.Partial >= 1 {
		return fmt.Errorf("fault: rule %q: partial %v out of [0, 1)", r.Name, r.Partial)
	}
	if r.Partial > 0 && r.Err != "" {
		return fmt.Errorf("fault: rule %q: partial and err are mutually exclusive", r.Name)
	}
	if r.MaxFires < 0 {
		return fmt.Errorf("fault: rule %q: negative max_fires %d", r.Name, r.MaxFires)
	}
	if r.Until != 0 && r.Until <= r.After {
		return fmt.Errorf("fault: rule %q: window [%v, %v) is empty", r.Name, r.After, r.Until)
	}
	return nil
}

// Outage is one server-down window: from Start until End the server answers
// nothing — every message on the link is dropped deterministically (no rng
// draw), clients time out and retransmit — and at End the server restarts
// with all daemon state (its block cache) gone.
type Outage struct {
	// Start is the crash time, virtual µs.
	Start float64 `json:"start_us"`
	// End is the restart time, virtual µs; must exceed Start.
	End float64 `json:"end_us"`
}

// Validate checks the outage window.
func (o *Outage) Validate() error {
	if o.Start < 0 {
		return fmt.Errorf("fault: outage start_us %v negative", o.Start)
	}
	if o.End <= o.Start {
		return fmt.Errorf("fault: outage window [%v, %v) is empty", o.Start, o.End)
	}
	return nil
}

// Plan is a named, composable set of fault rules plus the network retry
// parameters the link attach point needs.
type Plan struct {
	// Name labels the plan and salts every rule's rng stream.
	Name string `json:"name"`
	// Rules are evaluated in order; the first rule that fires decides the
	// call's outcome.
	Rules []Rule `json:"rules"`

	// ServerOutages lists server-down windows: complete, deterministic
	// message loss while each window is open, followed by a cold-cache
	// server restart at its end. Windows are checked before the rules.
	ServerOutages []Outage `json:"server_outages,omitempty"`

	// NetTimeout is the sender's retransmission timeout for a dropped
	// message, µs (0 means DefaultNetTimeout — NFSv2's 0.7 s initial timeo).
	NetTimeout float64 `json:"net_timeout_us,omitempty"`
	// NetRetries bounds retransmissions per message (0 means
	// DefaultNetRetries — the classic soft-mount retrans=5). After the
	// budget the message is delivered anyway, so a hard-mounted workload
	// degrades rather than wedges. Ignored under NetHard.
	NetRetries int `json:"net_retries,omitempty"`
	// NetBackoff grows the retransmission timeout geometrically per retry
	// (capped exponential backoff; 0 or 1 keeps it constant).
	NetBackoff float64 `json:"net_backoff,omitempty"`
	// NetMaxTimeout caps the backed-off timeout, µs (0 means uncapped —
	// with NetBackoff set, prefer a cap: 60 s is the classic maximum timeo).
	NetMaxTimeout float64 `json:"net_max_timeout_us,omitempty"`
	// NetHard selects hard-mount semantics: retry forever, never give up.
	NetHard bool `json:"net_hard,omitempty"`
}

// Network retry defaults (NFSv2 mount defaults: timeo=7 tenths, retrans=5).
const (
	DefaultNetTimeout = 700_000 // µs
	DefaultNetRetries = 5
)

// Timeout returns the retransmission timeout with its default applied.
func (p *Plan) Timeout() float64 {
	if p.NetTimeout > 0 {
		return p.NetTimeout
	}
	return DefaultNetTimeout
}

// Retries returns the retransmission budget with its default applied.
func (p *Plan) Retries() int {
	if p.NetRetries > 0 {
		return p.NetRetries
	}
	return DefaultNetRetries
}

// Validate checks the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.Rules) == 0 && len(p.ServerOutages) == 0 {
		return errors.New("fault: plan has no rules and no server outages")
	}
	for i := range p.ServerOutages {
		if err := p.ServerOutages[i].Validate(); err != nil {
			return err
		}
	}
	names := make(map[string]bool, len(p.Rules))
	for i := range p.Rules {
		r := &p.Rules[i]
		if err := r.Validate(); err != nil {
			return err
		}
		if names[r.Name] {
			return fmt.Errorf("fault: duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
	}
	if p.NetTimeout < 0 {
		return fmt.Errorf("fault: negative net_timeout_us %v", p.NetTimeout)
	}
	if p.NetRetries < 0 {
		return fmt.Errorf("fault: negative net_retries %d", p.NetRetries)
	}
	if p.NetBackoff != 0 && (p.NetBackoff < 1 || math.IsNaN(p.NetBackoff)) {
		return fmt.Errorf("fault: net_backoff %v must be >= 1 (0 disables backoff)", p.NetBackoff)
	}
	if p.NetMaxTimeout < 0 {
		return fmt.Errorf("fault: negative net_max_timeout_us %v", p.NetMaxTimeout)
	}
	if p.NetMaxTimeout > 0 && p.NetMaxTimeout < p.Timeout() {
		return fmt.Errorf("fault: net_max_timeout_us %v below the initial timeout %v", p.NetMaxTimeout, p.Timeout())
	}
	return nil
}

// HasFSRules reports whether any rule can fire at the vfs layer (plain op
// names or the wildcard) — whether wrapping a file system in FS is useful.
func (p *Plan) HasFSRules() bool {
	for i := range p.Rules {
		for _, o := range p.Rules[i].Ops {
			if o == "*" || vfsOps[o] {
				return true
			}
		}
	}
	return false
}

// Outcome is the engine's verdict for one call that fired a rule.
type Outcome struct {
	// Rule is the name of the rule that fired.
	Rule string
	// Kind is the rule's error kind (ENOSPC, EINTR, EIO, or empty).
	Kind string
	// Err is the injected error (nil for latency/partial/drop outcomes).
	Err error
	// Latency is the extra time to charge, µs.
	Latency float64
	// Partial, when > 0, is the fraction of the transfer to complete.
	Partial float64
	// Drop marks a lost network message.
	Drop bool
}

// ruleState is a rule plus its runtime state: a private rng stream and the
// firing counters that implement transient and sticky behaviour.
type ruleState struct {
	Rule
	r       *rand.Rand
	fires   int64
	tripped bool // sticky rule has fired at least once
	bad     bool // burst rule's Gilbert-Elliott chain is in the bad state
}

// burstFires advances the rule's Gilbert-Elliott chain one matching call and
// reports whether the call fires. The chain transitions first, then the
// (possibly new) state decides: good never fires, bad fires with Loss.
func (rs *ruleState) burstFires() bool {
	b := rs.Burst
	if rs.bad {
		if rs.r.Float64() < b.PExit {
			rs.bad = false
		}
	} else if rs.r.Float64() < b.PEnter {
		rs.bad = true
	}
	if !rs.bad {
		return false
	}
	if b.Loss > 0 && b.Loss < 1 {
		return rs.r.Float64() < b.Loss
	}
	return true
}

// active reports whether the rule can fire at virtual time now.
func (rs *ruleState) active(now float64) bool {
	if rs.tripped {
		return true // sticky rules stay tripped past their window
	}
	if now < rs.After {
		return false
	}
	if rs.Until > 0 && now >= rs.Until {
		return false
	}
	if rs.MaxFires > 0 && rs.fires >= int64(rs.MaxFires) {
		return false
	}
	return true
}

// Engine evaluates a Plan call by call. One engine serves every attach point
// of one generator run; construct a fresh engine (same seed, same plan) to
// reproduce a run exactly.
type Engine struct {
	plan  *Plan
	rules []*ruleState

	// mu guards Eval. Under the DES kernel the whole run is single-threaded
	// and the lock is uncontended; the wall-clock runner drives real file
	// systems from one goroutine per user, where the lock keeps counters
	// and rng streams coherent (though cross-user firing order — and with
	// it exact reproducibility — is the host scheduler's, not ours).
	mu          sync.Mutex
	calls       int64
	injected    int64
	byRule      map[string]int64
	ruleOrder   []string
	osStart     time.Time // zero until the first host-level evaluation
	osPartial   float64   // partial fraction pending between OSBefore and OSChunk
	outageDrops int64     // messages lost to server outage windows
}

// OutageDrops returns the number of messages lost inside server outage
// windows (separate from rule-driven drops).
func (e *Engine) OutageDrops() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.outageDrops
}

// NewEngine compiles a plan into an engine. Each rule's stream is derived
// from the seed, the plan name, and the rule name, so renaming a rule — not
// just reordering — is what changes its draws.
func NewEngine(plan *Plan, seed uint64) (*Engine, error) {
	if plan == nil {
		return nil, errors.New("fault: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{plan: plan, byRule: make(map[string]int64, len(plan.Rules))}
	for i := range plan.Rules {
		r := plan.Rules[i]
		e.rules = append(e.rules, &ruleState{
			Rule: r,
			r:    rng.Derive(seed, plan.Name+"/"+r.Name),
		})
		e.ruleOrder = append(e.ruleOrder, r.Name)
	}
	return e, nil
}

// Plan returns the engine's plan.
func (e *Engine) Plan() *Plan { return e.plan }

// errFor maps an error kind to its shared errno-style error.
func errFor(kind string) error {
	switch kind {
	case ENOSPC:
		return vfs.ErrNoSpace
	case EINTR:
		return vfs.ErrInterrupted
	case EIO:
		return vfs.ErrIO
	default:
		return vfs.ErrInvalid
	}
}

// Eval decides one call's fate: the first matching, active rule that fires
// wins. The second return is false when the call passes through clean.
func (e *Engine) Eval(op string, now float64) (Outcome, bool) {
	return e.eval(op, now, false)
}

// EvalLatencyOnly is Eval restricted to pure latency rules (no error, no
// partial, no drop). Attach points that cannot deliver an error — the FS
// wrapper's Close — use it so error rules neither fire invisibly nor have
// their streams, fire counts, or sticky/MaxFires state consumed by calls
// they cannot affect.
func (e *Engine) EvalLatencyOnly(op string, now float64) (Outcome, bool) {
	return e.eval(op, now, true)
}

func (e *Engine) eval(op string, now float64, latencyOnly bool) (Outcome, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	for _, rs := range e.rules {
		if latencyOnly && (rs.Err != "" || rs.Partial > 0 || rs.Drop) {
			continue
		}
		if !rs.matches(op) || !rs.active(now) {
			continue
		}
		if !rs.tripped {
			if rs.Burst != nil {
				if !rs.burstFires() {
					continue
				}
			} else if rs.Prob <= 0 || rs.r.Float64() >= rs.Prob {
				continue
			}
		}
		rs.fires++
		if rs.Sticky {
			rs.tripped = true
		}
		e.injected++
		e.byRule[rs.Name]++
		out := Outcome{
			Rule:    rs.Name,
			Kind:    rs.Err,
			Latency: rs.Latency,
			Partial: rs.Partial,
			Drop:    rs.Drop,
		}
		if rs.Err != "" {
			out.Err = fmt.Errorf("%w: %s (%s): %w", ErrInjected, op, rs.Name, errFor(rs.Err))
		}
		return out, true
	}
	return Outcome{}, false
}

// Calls returns the number of calls evaluated.
func (e *Engine) Calls() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// Injected returns the number of calls on which a rule fired.
func (e *Engine) Injected() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.injected
}

// FiresByRule returns per-rule firing counts in plan order.
func (e *Engine) FiresByRule() []struct {
	Rule  string
	Fires int64
} {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]struct {
		Rule  string
		Fires int64
	}, 0, len(e.ruleOrder))
	for _, name := range e.ruleOrder {
		out = append(out, struct {
			Rule  string
			Fires int64
		}{name, e.byRule[name]})
	}
	return out
}

// ---------------------------------------------------------- attach adapters

// Message implements netsim's Faulter hook: it reports whether the message
// is lost (sender times out and retransmits) and any extra delivery delay.
// Server outage windows are checked first and drop deterministically — a
// dead server loses every message without consuming any rule's rng stream,
// so adding an outage leaves the rules' draw sequences untouched.
func (e *Engine) Message(now float64) (drop bool, delay float64) {
	for i := range e.plan.ServerOutages {
		o := &e.plan.ServerOutages[i]
		if now >= o.Start && now < o.End {
			e.mu.Lock()
			e.outageDrops++
			e.mu.Unlock()
			return true, 0
		}
	}
	out, fired := e.Eval(OpNet, now)
	if !fired {
		return false, 0
	}
	if out.Drop {
		return true, 0
	}
	return false, out.Latency
}

// Stall implements the nfs server's Staller hook: extra µs the serving nfsd
// holds this call (queueing behind a stalled daemon is what degrades the
// other clients).
func (e *Engine) Stall(now float64) float64 {
	out, fired := e.Eval(OpRPC, now)
	if !fired {
		return 0
	}
	return out.Latency
}
