module uswg

go 1.24
