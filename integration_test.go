package uswg

import (
	"bytes"
	"testing"

	"uswg/internal/baseline"
	"uswg/internal/config"
	"uswg/internal/core"
	"uswg/internal/trace"
	"uswg/internal/validate"
	"uswg/internal/vfs"
)

// smallNFS returns a fast NFS-mode spec.
func smallNFS(seed uint64) *config.Spec {
	spec := config.Default()
	spec.Seed = seed
	spec.Users = 2
	spec.Sessions = 12
	spec.SystemFiles = 30
	spec.FilesPerUser = 25
	return spec
}

// TestPipelineEndToEnd exercises GDS -> FSC -> USIM -> Usage Analyzer ->
// statistical validation as one flow, the complete Figure 4.1 block diagram.
func TestPipelineEndToEnd(t *testing.T) {
	spec := smallNFS(42)
	gen, err := core.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != spec.Sessions {
		t.Fatalf("sessions = %d", res.Sessions)
	}

	// The log round-trips through JSONL (the "usage log file").
	var buf bytes.Buffer
	if err := gen.Log().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != gen.Log().Len() {
		t.Fatalf("round trip %d != %d", back.Len(), gen.Log().Len())
	}

	// Statistical similarity: the non-advisory checks must accept.
	rep, err := validate.Workload(spec, back)
	if err != nil {
		t.Fatal(err)
	}
	if failed := rep.Failed(0.001); len(failed) > 0 {
		t.Errorf("validation rejected: %+v", failed)
	}
}

// TestReplayedWorkloadMatchesOriginal replays a generated usage log (the
// trace-data baseline) and confirms the operation mix survives the replay.
func TestReplayedWorkloadMatchesOriginal(t *testing.T) {
	spec := smallNFS(7)
	spec.FS = config.FSSpec{Kind: config.FSLocal}
	gen, err := core.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Run(); err != nil {
		t.Fatal(err)
	}
	orig := gen.Log().Records()

	// The trace references the FSC-created namespace, so the replay target
	// must be initialized the same way: a second generator with the same
	// spec and seed rebuilds an identical initial file system.
	spec2 := smallNFS(7)
	spec2.FS = config.FSSpec{Kind: config.FSLocal}
	gen2, err := core.NewGenerator(spec2)
	if err != nil {
		t.Fatal(err)
	}
	fresh := gen2.FS()
	var replayed trace.Log
	n, err := baseline.Replay(&vfs.ManualClock{}, fresh, orig, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	// Data volume must be preserved for successfully replayed data ops.
	var origBytes, replayBytes int64
	for _, r := range orig {
		if r.Op.IsData() && r.Err == "" {
			origBytes += r.Bytes
		}
	}
	for _, r := range replayed.Records() {
		if r.Op.IsData() && r.Err == "" {
			replayBytes += r.Bytes
		}
	}
	if replayBytes == 0 || replayBytes > origBytes {
		t.Errorf("replayed %d bytes of %d", replayBytes, origBytes)
	}
	ratio := float64(replayBytes) / float64(origBytes)
	if ratio < 0.9 {
		t.Errorf("replay lost %.0f%% of the data volume", 100*(1-ratio))
	}
}

// TestBenchmarkVsSyntheticDiversity contrasts the Andrew-style script with
// the user-oriented generator: the script performs the identical operation
// mix every run, while the synthetic workload varies by seed — the thesis's
// core argument for distribution-driven generation (§2.1).
func TestBenchmarkVsSyntheticDiversity(t *testing.T) {
	scriptMix := func() map[trace.Op]int {
		fs := vfs.NewMemFS(vfs.WithMaxFDs(1 << 16))
		var log trace.Log
		if err := baseline.Script(&vfs.ManualClock{}, fs, "/b", baseline.DefaultScriptConfig(), &log, 0); err != nil {
			t.Fatal(err)
		}
		mix := make(map[trace.Op]int)
		for _, r := range log.Records() {
			mix[r.Op]++
		}
		return mix
	}
	a, b := scriptMix(), scriptMix()
	for op, n := range a {
		if b[op] != n {
			t.Errorf("benchmark mix differs across runs: %s %d vs %d", op, n, b[op])
		}
	}

	synthMix := func(seed uint64) int {
		spec := smallNFS(seed)
		spec.FS = config.FSSpec{Kind: config.FSLocal}
		gen, err := core.NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gen.Run(); err != nil {
			t.Fatal(err)
		}
		return gen.Log().Len()
	}
	if synthMix(1) == synthMix(2) {
		t.Log("two seeds produced equal op counts (possible but unlikely); not failing on one coincidence")
	}
}

// TestExtensionsThroughCore runs every §6.2 extension through the public
// facade to confirm they compose.
func TestExtensionsThroughCore(t *testing.T) {
	spec := smallNFS(99)
	spec.Ext = config.Extensions{
		Locality:           0.5,
		ThinkFactors:       []float64{0.5, 2},
		ThinkPeriod:        5e6,
		ConcurrentSessions: 2,
	}
	spec.Categories[2].Access = config.AccessRandom
	gen, err := core.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != spec.Sessions {
		t.Errorf("sessions = %d", res.Sessions)
	}
	if res.Analysis.Errors > 0 {
		t.Errorf("extension run produced %d errored ops", res.Analysis.Errors)
	}
}

// TestSpecFileDrivesRun saves a spec, loads it back, and runs it — the
// wlgen CLI's path.
func TestSpecFileDrivesRun(t *testing.T) {
	dir := t.TempDir()
	spec := smallNFS(5)
	path := dir + "/spec.json"
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := config.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(loaded)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != spec.Sessions {
		t.Errorf("sessions = %d", res.Sessions)
	}
}

// TestFDsNeverLeak runs a workload and confirms every descriptor opened by
// the USIM is closed by logout.
func TestFDsNeverLeak(t *testing.T) {
	spec := smallNFS(11)
	gen, err := core.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Run(); err != nil {
		t.Fatal(err)
	}
	var balance int
	for _, r := range gen.Log().Records() {
		if r.Err != "" {
			continue
		}
		switch r.Op {
		case trace.OpOpen, trace.OpCreate:
			balance++
		case trace.OpClose:
			balance--
		}
	}
	if balance != 0 {
		t.Errorf("open/close imbalance: %d", balance)
	}
}
