// Command experiments regenerates the thesis's evaluation tables and
// figures (Chapter 5), plus the fault5.x resilience family (the same
// workload replayed under injected faults).
//
// Usage:
//
//	experiments -run table5.3          # one experiment
//	experiments -run fault5.1          # degraded user curves + availability
//	experiments -run all -scale 0.2    # everything, at reduced session counts
//
// Experiment names: table5.1 table5.2 table5.3 table5.4 fig5.1 fig5.2
// fig5.3 (also covers 5.4/5.5) fig5.6 ... fig5.12, fault5.1 ... fault5.4,
// or "all". Output is byte-identical at any -parallel setting, fault
// experiments included.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uswg/internal/experiments"
)

func main() {
	var (
		name     = flag.String("run", "all", "experiment to run (see package comment)")
		scale    = flag.Float64("scale", 1, "session-count multiplier (e.g. 0.1 for a quick look)")
		seed     = flag.Uint64("seed", 0, "override the RNG seed (0 keeps the default)")
		parallel = flag.Int("parallel", 0, "concurrent runs per sweep (0 = GOMAXPROCS; results are identical at any setting)")
	)
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel}
	results, err := experiments.Run(strings.ToLower(*name), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(r.Render())
	}
}
