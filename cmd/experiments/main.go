// Command experiments regenerates the thesis's evaluation tables and
// figures (Chapter 5), plus the fault5.x resilience family (the same
// workload replayed under injected faults). Every experiment is a
// registered scenario (package scenario): -run resolves names through the
// registry, -scenario executes a declarative JSON scenario file, and -dump
// exports any built-in as JSON to start a new workload from.
//
// Usage:
//
//	experiments -run table5.3            # one experiment
//	experiments -run fault5.1            # degraded user curves + availability
//	experiments -run all -scale 0.2      # everything, at reduced session counts
//	experiments -scenario my.json        # a JSON-defined experiment
//	experiments -dump fig5.6             # export a built-in as JSON
//
// Experiment names: table5.1 table5.2 table5.3 table5.4 fig5.1 fig5.2
// fig5.3 (also covers 5.4/5.5) fig5.6 ... fig5.12, fault5.1 ... fault5.5,
// scale5.1, or "all". Output is byte-identical at any -parallel setting,
// fault experiments included.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"uswg/internal/experiments"
	"uswg/internal/scenario"
)

func main() {
	var (
		name     = flag.String("run", "all", "experiment to run (see package comment)")
		scFile   = flag.String("scenario", "", "run a declarative scenario JSON file instead of -run")
		dump     = flag.String("dump", "", "print the named built-in scenario as JSON and exit")
		scale    = flag.Float64("scale", 1, "session-count multiplier (e.g. 0.1 for a quick look)")
		seed     = flag.Uint64("seed", 0, "override the RNG seed (0 keeps the default)")
		parallel = flag.Int("parallel", 0, "concurrent runs per sweep (0 = GOMAXPROCS; results are identical at any setting)")
	)
	flag.Parse()

	if *dump != "" {
		sc, ok := scenario.Lookup(strings.ToLower(*dump))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown scenario %q (try one of %s)\n",
				*dump, strings.Join(scenario.Names(), ", "))
			os.Exit(1)
		}
		if err := sc.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel}
	var results []experiments.Renderer
	var err error
	if *scFile != "" {
		var sc *scenario.Scenario
		sc, err = scenario.Load(*scFile)
		if err == nil {
			var res scenario.Result
			res, err = scenario.Run(context.Background(), sc, scenario.Options(opts))
			if err == nil {
				results = []experiments.Renderer{res}
			}
		}
	} else {
		results, err = experiments.Run(strings.ToLower(*name), opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(r.Render())
	}
}
