// Command benchgate turns `go test -bench` output into the repo's
// BENCH_*.json format and enforces the CI performance gate against a
// checked-in baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 3x -count 3 ./... | benchgate parse -out BENCH_pr.json
//	benchgate check -baseline BENCH_baseline.json -current BENCH_pr.json -max-regress-pct 20
//
// parse reads benchmark text on stdin (or -in), keeps the fastest of the
// repeated runs of each benchmark (min ns/op — repeats absorb scheduler
// noise), and writes the JSON snapshot. check compares two snapshots and
// exits nonzero if any benchmark present in both regressed its ns/op OR
// its allocs/op by more than the threshold, printing a per-benchmark table
// with both columns either way. Unlike ns/op, allocs/op is deterministic
// and hardware-independent, so the allocation gate never applies -anchor
// normalization — a cross-hardware baseline still gates allocations
// exactly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the BENCH_*.json schema shared with BENCH_baseline.json.
type Snapshot struct {
	Note        string            `json:"note"`
	Environment map[string]string `json:"environment"`
	Go          string            `json:"go"`
	Benchmarks  []Benchmark       `json:"benchmarks"`
}

// Benchmark is one benchmark's fastest run.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		parseCmd(os.Args[2:])
	case "check":
		checkCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate parse [-in file] [-out file] [-note text] | benchgate check -baseline file -current file [-max-regress-pct 20] [-require Name1,Name2] [-anchor Name1,Name2]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// benchLine matches one result line: name, iterations, then metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parse reads `go test -bench` text and keeps each benchmark's fastest run.
func parse(r io.Reader, note string) (*Snapshot, error) {
	snap := &Snapshot{
		Note:        note,
		Environment: map[string]string{},
		Go:          runtime.Version(),
	}
	best := map[string]*Benchmark{}
	var order []string
	var pkgs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				snap.Environment[key] = v
			}
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkgs = append(pkgs, v)
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -GOMAXPROCS suffix so names are stable across hosts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		metrics, err := parseMetrics(m[3])
		if err != nil || metrics["ns/op"] == 0 {
			continue
		}
		// Prefer the highest-iteration methodology for a benchmark, then
		// the fastest run within it. A 3-iteration sample finishes before
		// the allocator reaches GC steady state and reads systematically
		// faster than a 1000-iteration sample of the same code; comparing
		// across those methodologies would gate on the wrong signal.
		b := &Benchmark{Name: name, Iterations: iters, Metrics: metrics}
		prev, seen := best[name]
		switch {
		case !seen:
			order = append(order, name)
			best[name] = b
		case b.Iterations > prev.Iterations:
			best[name] = b
		case b.Iterations == prev.Iterations && b.Metrics["ns/op"] < prev.Metrics["ns/op"]:
			best[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	sort.Strings(pkgs)
	snap.Environment["pkg"] = strings.Join(dedup(pkgs), ",")
	for _, name := range order {
		snap.Benchmarks = append(snap.Benchmarks, *best[name])
	}
	return snap, nil
}

// parseMetrics parses "1732840 ns/op\t108.3 ns/event\t..." pairs.
func parseMetrics(s string) (map[string]float64, error) {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("odd metric fields in %q", s)
	}
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, err
		}
		out[fields[i+1]] = v
	}
	return out, nil
}

func dedup(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func parseCmd(args []string) {
	in, out, note := "", "", "Recorded by benchgate parse (fastest of repeated runs)."
	for i := 0; i < len(args); i += 2 {
		if i+1 >= len(args) {
			usage()
		}
		switch args[i] {
		case "-in":
			in = args[i+1]
		case "-out":
			out = args[i+1]
		case "-note":
			note = args[i+1]
		default:
			usage()
		}
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r, note)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(snap.Benchmarks), out)
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

func checkCmd(args []string) {
	baselinePath, currentPath, require, anchor := "", "", "", ""
	maxRegressPct := 20.0
	for i := 0; i < len(args); i++ {
		if i+1 >= len(args) {
			usage()
		}
		switch args[i] {
		case "-baseline":
			baselinePath = args[i+1]
		case "-current":
			currentPath = args[i+1]
		case "-require":
			require = args[i+1]
		case "-anchor":
			// Normalize every ratio by the mean ratio of these benchmarks
			// before gating. Anchors should be stable reference code the
			// change under test cannot touch (pure sampling kernels): a
			// baseline recorded on different hardware shifts all ratios by
			// a common factor, and the anchors measure exactly that factor
			// without letting a real regression in the gated benchmarks
			// shift the scale (which a median over the gated set would).
			anchor = args[i+1]
		case "-max-regress-pct":
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fatal(err)
			}
			maxRegressPct = v
		default:
			usage()
		}
		i++
	}
	if baselinePath == "" || currentPath == "" {
		usage()
	}
	baseline, err := load(baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := load(currentPath)
	if err != nil {
		fatal(err)
	}
	base := map[string]Benchmark{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	limit := 1 + maxRegressPct/100
	type row struct {
		cur        Benchmark
		base       Benchmark
		ratio      float64 // ns/op ratio
		allocRatio float64 // allocs/op ratio (0/0 compares as 1)
		hasAllocs  bool    // both sides carry the allocs/op metric
	}
	var rows []row
	for _, cur := range current.Benchmarks {
		b, ok := base[cur.Name]
		if !ok {
			fmt.Printf("%-45s new benchmark, %0.f ns/op (no baseline)\n", cur.Name, cur.Metrics["ns/op"])
			continue
		}
		r := row{cur: cur, base: b, ratio: cur.Metrics["ns/op"] / b.Metrics["ns/op"]}
		// A genuine 0 must stay gated — the zero-alloc benchmarks are
		// exactly the ones a silent `> 0` guard would exempt — so only a
		// metric missing on either side (a run without -benchmem)
		// disables the allocation comparison for the row.
		ba, baseHas := b.Metrics["allocs/op"]
		ca, curHas := cur.Metrics["allocs/op"]
		if r.hasAllocs = baseHas && curHas; r.hasAllocs {
			switch {
			case ba > 0:
				r.allocRatio = ca / ba
			case ca == 0:
				r.allocRatio = 1 // 0 -> 0: unchanged
			default:
				r.allocRatio = math.Inf(1) // 0 -> nonzero: unbounded regression
			}
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("no benchmarks in common between %s and %s", baselinePath, currentPath))
	}
	scale := 1.0
	if anchor != "" {
		var sum float64
		var n int
		for _, name := range strings.Split(anchor, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, r := range rows {
				if r.cur.Name == name {
					sum += r.ratio
					n++
					found = true
					break
				}
			}
			if !found {
				fatal(fmt.Errorf("anchor benchmark %s missing from the compared set", name))
			}
		}
		scale = sum / float64(n)
		if scale <= 0 {
			scale = 1
		}
		fmt.Printf("normalizing by anchor ratio %.2fx (cross-hardware baseline)\n", scale)
	}
	failed := 0
	fmt.Printf("%-45s %14s %14s %8s %14s %14s %8s\n",
		"benchmark", "baseline ns/op", "current ns/op", "ratio",
		"base allocs/op", "cur allocs/op", "ratio")
	for _, r := range rows {
		ratio := r.ratio / scale
		mark := ""
		if ratio > limit {
			mark = "  REGRESSION(ns/op)"
			failed++
		}
		allocCol := fmt.Sprintf("%7s ", "-")
		if r.hasAllocs {
			allocCol = fmt.Sprintf("%7.2fx", r.allocRatio)
			if r.allocRatio > limit {
				mark += "  REGRESSION(allocs/op)"
				failed++
			}
		}
		fmt.Printf("%-45s %14.0f %14.0f %7.2fx %14.0f %14.0f %s%s\n",
			r.cur.Name, r.base.Metrics["ns/op"], r.cur.Metrics["ns/op"], ratio,
			r.base.Metrics["allocs/op"], r.cur.Metrics["allocs/op"], allocCol, mark)
	}
	compared := len(rows)
	// The current snapshot is normally a gated subset of the baseline, so a
	// missing baseline entry is not an error by itself — but the benchmarks
	// the gate exists for must not silently drop out (a renamed benchmark
	// or a stale -bench pattern would otherwise weaken the gate to a no-op).
	if require != "" {
		have := map[string]bool{}
		for _, b := range current.Benchmarks {
			have[b.Name] = true
		}
		for _, name := range strings.Split(require, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			if !have[name] {
				fatal(fmt.Errorf("required benchmark %s missing from %s (renamed, or the bench pattern no longer matches?)", name, currentPath))
			}
			if _, ok := base[name]; !ok {
				fatal(fmt.Errorf("required benchmark %s missing from baseline %s (stale baseline?)", name, baselinePath))
			}
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d regression(s) across %d benchmarks exceeded %.0f%% (ns/op or allocs/op)", failed, compared, maxRegressPct))
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline (ns/op and allocs/op)\n", compared, maxRegressPct)
}
