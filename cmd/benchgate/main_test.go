package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: uswg
cpu: Test CPU
BenchmarkFast-4      	    1000	      50.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFast-4      	    1000	      48.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMacro-4     	       3	 1000000 ns/op	  500000 B/op	   20000 allocs/op
BenchmarkMacro-4     	       3	  900000 ns/op	  500000 B/op	   20000 allocs/op
BenchmarkMacro-4     	    1000	 1100000 ns/op	  500000 B/op	   21000 allocs/op
PASS
`

func TestParseKeepsBestRuns(t *testing.T) {
	snap, err := parse(strings.NewReader(benchText), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(snap.Benchmarks))
	}
	byName := map[string]Benchmark{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	// GOMAXPROCS suffix stripped; fastest repeat wins within a methodology.
	fast, ok := byName["BenchmarkFast"]
	if !ok {
		t.Fatal("BenchmarkFast missing (suffix not stripped?)")
	}
	if fast.Metrics["ns/op"] != 48.0 {
		t.Errorf("fast ns/op = %v, want fastest repeat 48", fast.Metrics["ns/op"])
	}
	// The higher-iteration methodology wins even when slower.
	macro := byName["BenchmarkMacro"]
	if macro.Iterations != 1000 || macro.Metrics["ns/op"] != 1100000 {
		t.Errorf("macro kept %d iters / %v ns/op; want the 1000-iteration sample", macro.Iterations, macro.Metrics["ns/op"])
	}
	if macro.Metrics["allocs/op"] != 21000 {
		t.Errorf("macro allocs/op = %v", macro.Metrics["allocs/op"])
	}
	if snap.Environment["cpu"] != "Test CPU" {
		t.Errorf("environment cpu = %q", snap.Environment["cpu"])
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n"), ""); err == nil {
		t.Error("expected an error for input without benchmark lines")
	}
}

func TestParseMetricsPairs(t *testing.T) {
	m, err := parseMetrics("123 ns/op\t45 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if m["ns/op"] != 123 || m["allocs/op"] != 45 {
		t.Errorf("metrics = %v", m)
	}
	if _, err := parseMetrics("odd field count here?"); err == nil {
		t.Error("expected an error for odd metric fields")
	}
}
