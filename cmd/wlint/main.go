// Command wlint runs the repo's determinism-invariant analyzers (package
// uswg/internal/lint) over go-list package patterns and exits non-zero if
// any diagnostic survives its //wlint:allow annotations. CI runs
// `wlint ./...` as a required gate; see DESIGN.md, "Determinism invariants
// & wlint".
//
// Usage:
//
//	wlint [-run maprange,rngdiscipline,...] [-list] [packages...]
//
// With no packages, ./... is linted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uswg/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "wlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	diags, err := lint.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlint: %v\n", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if wd != "" {
			if rel, ok := strings.CutPrefix(pos.Filename, wd+string(os.PathSeparator)); ok {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
