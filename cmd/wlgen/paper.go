package main

// The paper subcommand regenerates the whole reproduction's artifact set —
// every registered scenario's points, plots, resolved spec, and rendered log
// — into one timestamped folder, and compares two such folders:
//
//	wlgen paper -out paper_runs/                    regenerate everything
//	wlgen paper -out d -only fig5.6,table5.3        a subset
//	wlgen paper -diff A B [-ulp 4]                  cell-by-cell folder compare
//
// Generation accepts -seed/-scale/-parallel like scenario run; the folder's
// comparable content (points/, scenarios/, plots/) depends only on seed,
// scale, and the scenario set — never on parallelism or wall-clock — so two
// identically-seeded runs -diff empty. See FIGURES.md for the catalog of
// what each scenario regenerates.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"uswg/internal/artifact"
	"uswg/internal/scenario"
)

func cmdPaper(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ExitOnError)
	out := fs.String("out", "paper_runs", "parent directory for generated artifact folders")
	stamp := fs.String("stamp", "", "artifact folder name inside -out (default: UTC timestamp)")
	only := fs.String("only", "", "comma-separated scenario subset (default: every registered scenario)")
	scale := fs.Float64("scale", 1, "session-count multiplier")
	seed := fs.Uint64("seed", 0, "override the RNG seed (0 keeps the default)")
	parallel := fs.Int("parallel", 0, "concurrent scenarios/points (0 = GOMAXPROCS; output identical at any setting)")
	doDiff := fs.Bool("diff", false, "compare two artifact folders instead of generating: wlgen paper -diff A B")
	ulp := fs.Uint64("ulp", artifact.DefaultMaxULP, "float tolerance for -diff, in units in the last place")
	_ = fs.Parse(args)

	if *doDiff {
		if fs.NArg() != 2 {
			return fmt.Errorf("paper: -diff needs exactly two folders: wlgen paper -diff A B")
		}
		return paperDiff(fs.Arg(0), fs.Arg(1), *ulp)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("paper: unexpected arguments %q (did you mean -diff A B?)", fs.Args())
	}

	name := *stamp
	if name == "" {
		//wlint:allow rngdiscipline artifact folders are stamped with real wall time by design (-stamp pins it for CI)
		name = time.Now().UTC().Format("2006-01-02_150405")
	}
	dir := filepath.Join(*out, name)

	bench, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	opts := artifact.Options{
		Only:       splitNames(*only),
		Run:        scenario.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel},
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		BenchFiles: bench,
		Log:        os.Stderr,
	}
	m, err := artifact.Generate(context.Background(), dir, opts)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d scenarios, seed %d, scale %g, %.0f ms\n",
		dir, len(m.Scenarios), m.Seed, m.Scale, m.WallMS)
	return nil
}

func paperDiff(a, b string, ulp uint64) error {
	diffs, err := artifact.DiffDirs(a, b, artifact.DiffOptions{MaxULP: ulp})
	if err != nil {
		return err
	}
	if len(diffs) == 0 {
		fmt.Printf("%s and %s agree (tolerance %d ulp)\n", a, b, ulp)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return fmt.Errorf("paper: %d difference(s) between %s and %s", len(diffs), a, b)
}

func splitNames(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// gitSHA asks the checkout for its commit; an artifact folder generated
// outside a git checkout is stamped "unknown".
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
