// Command wlgen is the workload generator's command-line front end.
//
// Subcommands:
//
//	wlgen spec  [-o spec.json]                 write the default spec
//	wlgen mkfs  [-spec spec.json]              build the initial file system, print Table 5.1 stats
//	wlgen run   [-spec spec.json] [-log f]     run the experiment, print a summary
//	wlgen run   -stream                        same, streaming the trace (no log retained)
//	wlgen analyze -log usage.jsonl [-stream]   analyze a usage log (the Usage Analyzer)
//	wlgen scenario {list|dump|run}             declarative experiments (see scenario.go)
//	wlgen paper -out paper_runs/               regenerate every figure/table artifact (see paper.go)
//	wlgen paper -diff A B                      compare two artifact folders cell by cell
//
// Without -spec, the thesis's §5.1 default configuration is used. -stream
// selects the streaming Summarizer sink: memory stays O(sessions) instead
// of O(records), which is what large populations need — but no usage log
// exists afterwards, so run -stream refuses -log (JSONL serialization
// requires the full records).
package main

import (
	"flag"
	"fmt"
	"os"

	"uswg/internal/config"
	"uswg/internal/core"
	"uswg/internal/fsc"
	"uswg/internal/gds"
	"uswg/internal/report"
	"uswg/internal/rng"
	"uswg/internal/stats"
	"uswg/internal/trace"
	"uswg/internal/vfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "mkfs":
		err = cmdMkfs(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "fit":
		err = cmdFit(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "script":
		err = cmdScript(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "paper":
		err = cmdPaper(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wlgen {spec|mkfs|run|analyze|scenario|paper} [flags]")
	os.Exit(2)
}

func loadSpec(path string) (*config.Spec, error) {
	if path == "" {
		return config.Default(), nil
	}
	return config.Load(path)
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	spec := config.Default()
	if *out == "" {
		return spec.Encode(os.Stdout)
	}
	return spec.Save(*out)
}

func cmdMkfs(args []string) error {
	fs := flag.NewFlagSet("mkfs", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec (default built-in)")
	_ = fs.Parse(args)
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	tables, err := gds.BuildTables(spec)
	if err != nil {
		return err
	}
	memfs := vfs.NewMemFS(vfs.WithMaxFDs(1 << 20))
	ctx := &vfs.ManualClock{}
	inv, err := fsc.Build(ctx, memfs, spec, tables, rng.Derive(spec.Seed, "fsc"))
	if err != nil {
		return err
	}
	st, err := inv.Stats(ctx, memfs, spec)
	if err != nil {
		return err
	}
	rows := make([][]string, len(st))
	for i, s := range st {
		rows[i] = []string{s.Name, fmt.Sprint(s.Files), report.F(s.MeanSize), report.F(s.PercentFiles)}
	}
	fmt.Printf("created %d files, %d bytes\n\n", inv.FilesCreated, inv.BytesCreated)
	fmt.Println(report.Table([]string{"category", "files", "mean size", "% of files"}, rows))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec (default built-in)")
	logPath := fs.String("log", "", "write the usage log as JSONL")
	stream := fs.Bool("stream", false, "stream the trace through the Summarizer (O(sessions) memory, no log retained)")
	_ = fs.Parse(args)
	if *stream && *logPath != "" {
		return fmt.Errorf("run: -stream retains no records, so -log (JSONL serialization) is impossible; drop one of the flags")
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	if *stream {
		spec.Trace.Mode = config.TraceStream
	}
	gen, err := core.NewGenerator(spec)
	if err != nil {
		return err
	}
	res, err := gen.Run()
	if err != nil {
		return err
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := gen.Log().WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("usage log: %s (%d records)\n", *logPath, gen.Log().Len())
	}
	printSummary(spec, res, gen)
	return nil
}

func printSummary(spec *config.Spec, res *core.Result, gen *core.Generator) {
	a := res.Analysis
	fmt.Printf("experiment %q: %d sessions, %d users, fs=%s\n",
		spec.Name, res.Sessions, spec.Users, spec.FS.Kind)
	if res.VirtualDuration > 0 {
		fmt.Printf("virtual duration: %.0f µs\n", res.VirtualDuration)
	}
	fmt.Printf("operations: %d (%d errors)\n", a.Ops, a.Errors)
	fmt.Printf("access size:   mean %s B (std %s)\n", report.F(a.AccessSize.Mean()), report.F(a.AccessSize.Std()))
	fmt.Printf("response time: mean %s µs (std %s)\n", report.F(a.Response.Mean()), report.F(a.Response.Std()))
	fmt.Printf("response/byte: %s µs/B\n", report.F(a.MeanResponsePerByte()))
	if srv := gen.Server(); srv != nil {
		fmt.Printf("nfs server: %d RPCs, nfsd utilization %.1f%%, mean daemon wait %s µs\n",
			srv.Calls(), 100*srv.NFSDUtilization(), report.F(srv.MeanNFSDWait()))
		fmt.Printf("server cache hit rate: %.1f%%\n", 100*srv.Cache().HitRate())
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	logPath := fs.String("log", "", "usage log (JSONL) to analyze")
	bins := fs.Int("bins", 30, "histogram bins")
	smooth := fs.Int("smooth", 5, "smoothing window (bins)")
	stream := fs.Bool("stream", false, "fold records into the Summarizer while decoding (never materializes the log)")
	_ = fs.Parse(args)
	if *logPath == "" {
		return fmt.Errorf("analyze: -log is required")
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var a *trace.Analysis
	if *stream {
		// Streaming Usage Analyzer: each decoded record folds straight
		// into the accumulators, so a log of any size analyzes in
		// O(sessions) memory. Bit-identical to the materialized path.
		sum := trace.NewSummarizer()
		if _, err := trace.DecodeJSONL(f, sum); err != nil {
			return err
		}
		a = sum.Finish()
	} else {
		log, err := trace.ReadJSONL(f)
		if err != nil {
			return err
		}
		a = trace.Analyze(log)
	}

	fmt.Printf("%d records, %d sessions, %d errors\n\n", a.Ops, len(a.Sessions), a.Errors)
	rows := make([][]string, len(a.ByOp))
	for i, op := range a.ByOp {
		rows[i] = []string{
			op.Op.String(), fmt.Sprint(op.Count),
			report.F(op.Size.Mean()), report.F(op.Response.Mean()), report.F(op.Response.Std()),
		}
	}
	fmt.Println(report.Table([]string{"op", "count", "mean bytes", "mean resp (µs)", "std resp"}, rows))

	plot := func(title, xlabel string, max float64, f func(trace.SessionUsage) float64) error {
		h, err := stats.NewHistogram(0, max, *bins)
		if err != nil {
			return err
		}
		for _, v := range a.SessionValues(f) {
			h.Add(v)
		}
		fmt.Println(report.HistogramPlot(h, 60, 10, title+" (before smoothing)", xlabel))
		fmt.Println(report.HistogramPlot(h.Smoothed(*smooth), 60, 10, title+" (after smoothing)", xlabel))
		return nil
	}
	maxOf := func(f func(trace.SessionUsage) float64) float64 {
		m := 1.0
		for _, v := range a.SessionValues(f) {
			if v > m {
				m = v
			}
		}
		return m * 1.05
	}
	apb := func(s trace.SessionUsage) float64 { return s.AccessPerByte }
	fsz := func(s trace.SessionUsage) float64 { return s.AvgFileSize }
	nf := func(s trace.SessionUsage) float64 { return float64(s.FilesReferenced) }
	if err := plot("average access-per-byte", "access-per-byte", maxOf(apb), apb); err != nil {
		return err
	}
	if err := plot("average file size", "bytes", maxOf(fsz), fsz); err != nil {
		return err
	}
	return plot("average number of files referenced", "files", maxOf(nf), nf)
}
