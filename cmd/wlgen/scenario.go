package main

// The scenario subcommand is wlgen's front end to the declarative
// experiment API (package scenario):
//
//	wlgen scenario list                          registered scenario names
//	wlgen scenario dump -name fig5.6 [-o f.json] export a built-in as JSON
//	wlgen scenario run  -name fig5.6             run a registered scenario
//	wlgen scenario run  -file my.json            run a JSON scenario file
//
// run accepts -scale/-seed/-parallel like cmd/experiments; output is
// byte-identical at any -parallel setting. -json/-csv swap the rendered
// text for the result's table (scenario.Tabular) in machine form. dump → edit → run is the
// no-compile workflow for new workloads: every knob of the built-ins —
// population and think times, sweep axes, fault plans (burst loss
// included), trace sink, output contract — is data in the dumped JSON.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"uswg/internal/artifact"
	"uswg/internal/scenario"
)

func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("scenario: usage: wlgen scenario {list|dump|run} [flags]")
	}
	switch args[0] {
	case "list":
		for _, name := range scenario.Names() {
			fmt.Println(name)
		}
		return nil
	case "dump":
		return cmdScenarioDump(args[1:])
	case "run":
		return cmdScenarioRun(args[1:])
	default:
		return fmt.Errorf("scenario: unknown subcommand %q (try list, dump, or run)", args[0])
	}
}

func cmdScenarioDump(args []string) error {
	fs := flag.NewFlagSet("scenario dump", flag.ExitOnError)
	name := fs.String("name", "", "registered scenario to export")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("scenario dump: -name is required (one of %s)", strings.Join(scenario.Names(), ", "))
	}
	sc, ok := scenario.Lookup(strings.ToLower(*name))
	if !ok {
		return fmt.Errorf("scenario dump: unknown scenario %q (one of %s)", *name, strings.Join(scenario.Names(), ", "))
	}
	if *out == "" {
		return sc.Encode(os.Stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := sc.Encode(f); err != nil {
		f.Close()
		return err
	}
	// A buffered write error can surface only at Close; reporting success
	// on a truncated dump would hand the user a file that fails to parse.
	if err := f.Close(); err != nil {
		return fmt.Errorf("scenario dump: %s: %w", *out, err)
	}
	return nil
}

func cmdScenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	name := fs.String("name", "", "registered scenario to run")
	file := fs.String("file", "", "scenario JSON file to run")
	scale := fs.Float64("scale", 1, "session-count multiplier")
	seed := fs.Uint64("seed", 0, "override the RNG seed (0 keeps the default)")
	parallel := fs.Int("parallel", 0, "concurrent sweep points (0 = GOMAXPROCS; output identical at any setting)")
	asJSON := fs.Bool("json", false, "emit the result's table as JSON instead of rendering it")
	asCSV := fs.Bool("csv", false, "emit the result's table as CSV instead of rendering it")
	_ = fs.Parse(args)
	if *asJSON && *asCSV {
		return fmt.Errorf("scenario run: -json and -csv are mutually exclusive")
	}

	var sc *scenario.Scenario
	switch {
	case *name != "" && *file != "":
		return fmt.Errorf("scenario run: -name and -file are mutually exclusive")
	case *name != "":
		var ok bool
		sc, ok = scenario.Lookup(strings.ToLower(*name))
		if !ok {
			return fmt.Errorf("scenario run: unknown scenario %q (one of %s)", *name, strings.Join(scenario.Names(), ", "))
		}
	case *file != "":
		var err error
		sc, err = scenario.Load(*file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("scenario run: one of -name or -file is required")
	}

	opts := scenario.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel}
	res, err := scenario.Run(context.Background(), sc, opts)
	if err != nil {
		return err
	}
	if *asJSON || *asCSV {
		return writeTabular(res, *asJSON)
	}
	fmt.Println(res.Render())
	return nil
}

// writeTabular emits the result's machine view: the scenario.Tabular table
// as JSON ({"title", "headers", "rows"}) or CSV (header row first), the same
// shapes `wlgen paper` files under points/.
func writeTabular(res scenario.Result, asJSON bool) error {
	tab, ok := res.(scenario.Tabular)
	if !ok {
		return fmt.Errorf("scenario run: this output kind renders text only; drop -json/-csv")
	}
	title, headers, rows := tab.Table()
	if asJSON {
		return artifact.WriteTableJSON(os.Stdout, title, headers, rows)
	}
	return artifact.WriteTableCSV(os.Stdout, headers, rows)
}
