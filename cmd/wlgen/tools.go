package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"uswg/internal/baseline"
	"uswg/internal/config"
	"uswg/internal/dist"
	"uswg/internal/gds"
	"uswg/internal/report"
	"uswg/internal/trace"
	"uswg/internal/validate"
	"uswg/internal/vfs"
)

// cmdFit reads one sample per line from stdin (or -in) and fits the chosen
// distribution family, printing the resulting DistSpec as JSON — the GDS's
// fitting function (thesis §4.1.1).
func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	family := fs.String("family", "gamma", "exponential | phase-exp | gamma")
	stages := fs.Int("stages", 2, "number of stages for phase-exp/gamma")
	in := fs.String("in", "", "samples file, one value per line (default stdin)")
	plot := fs.Bool("plot", false, "also render the fitted density")
	_ = fs.Parse(args)

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var samples []float64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return fmt.Errorf("fit: bad sample %q: %w", line, err)
		}
		samples = append(samples, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	spec, d, err := gds.Fit(samples, gds.FitFamily(*family), *stages)
	if err != nil {
		return err
	}
	out := struct {
		Fitted config.DistSpec `json:"fitted"`
		N      int             `json:"n"`
		Mean   float64         `json:"mean"`
	}{spec, len(samples), d.Mean()}
	enc := newJSONEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		return err
	}
	if *plot {
		if den, ok := d.(dist.Density); ok {
			hi := 4 * d.Mean()
			fmt.Println(report.Density(den, 0, hi, 60, 12, "fitted "+*family))
		}
	}
	return nil
}

func newJSONEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}

// cmdValidate runs the statistical-similarity checks of a usage log against
// its spec (the thesis's §2.2 criterion).
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec (default built-in)")
	logPath := fs.String("log", "", "usage log (JSONL)")
	alpha := fs.Float64("alpha", 0.01, "rejection level")
	_ = fs.Parse(args)
	if *logPath == "" {
		return fmt.Errorf("validate: -log is required")
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	rep, err := validate.Workload(spec, log)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if failed := rep.Failed(*alpha); len(failed) > 0 {
		return fmt.Errorf("validate: %d check(s) rejected at alpha=%g", len(failed), *alpha)
	}
	return nil
}

// cmdReplay re-executes a recorded usage log against a fresh in-memory file
// system (the trace-data baseline of §2.1).
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	logPath := fs.String("log", "", "usage log (JSONL) to replay")
	out := fs.String("out", "", "write the replayed log as JSONL")
	_ = fs.Parse(args)
	if *logPath == "" {
		return fmt.Errorf("replay: -log is required")
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	memfs := vfs.NewMemFS(vfs.WithMaxFDs(1 << 20))
	ctx := &vfs.ManualClock{}
	var replayLog trace.Log
	n, err := baseline.Replay(ctx, memfs, log.Records(), &replayLog)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d of %d operations in %.0f µs of virtual time\n", n, log.Len(), ctx.Now())
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		return replayLog.WriteJSONL(g)
	}
	return nil
}

// cmdScript runs the Andrew-style benchmark script (the benchmark baseline
// of §2.1) and prints its operation summary.
func cmdScript(args []string) error {
	fs := flag.NewFlagSet("script", flag.ExitOnError)
	dirs := fs.Int("dirs", 10, "directories")
	files := fs.Int("files", 7, "files per directory")
	size := fs.Int64("size", 16<<10, "file size, bytes")
	out := fs.String("log", "", "write the usage log as JSONL")
	_ = fs.Parse(args)

	cfg := baseline.ScriptConfig{Dirs: *dirs, FilesPerDir: *files, FileSize: *size, Chunk: 4096}
	memfs := vfs.NewMemFS(vfs.WithCostModel(vfs.NewLocalCost(nil, vfs.DefaultLocalCostConfig())), vfs.WithMaxFDs(1<<20))
	ctx := &vfs.ManualClock{}
	var log trace.Log
	if err := baseline.Script(ctx, memfs, "/bench", cfg, &log, 0); err != nil {
		return err
	}
	a := trace.Analyze(&log)
	fmt.Printf("script: %d ops in %.0f µs of virtual time\n\n", log.Len(), ctx.Now())
	rows := make([][]string, len(a.ByOp))
	for i, op := range a.ByOp {
		rows[i] = []string{op.Op.String(), fmt.Sprint(op.Count), report.F(op.Response.Mean())}
	}
	fmt.Println(report.Table([]string{"op", "count", "mean resp (µs)"}, rows))
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		return log.WriteJSONL(g)
	}
	return nil
}
