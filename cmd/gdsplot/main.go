// Command gdsplot renders distribution densities as ASCII plots — the
// Graphic Distribution Specifier's display, sans X11 — and re-renders the
// plot data files the artifact pipeline writes.
//
// Usage:
//
//	gdsplot                       # the thesis's Figure 5.1 and 5.2 examples
//	gdsplot -spec spec.json       # every distribution in an experiment spec
//	gdsplot -exp 1024 -hi 8000    # an exponential with the given mean
//	gdsplot -curve plots/fig5.6.json [-svg out.svg]
//	                              # re-render a `wlgen paper` plot file as
//	                              # ASCII, or as SVG with -svg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"uswg/internal/config"
	"uswg/internal/dist"
	"uswg/internal/gds"
	"uswg/internal/report"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "experiment spec whose distributions to plot")
		expMean   = flag.Float64("exp", 0, "plot an exponential with this mean")
		curvePath = flag.String("curve", "", "plot data file (report.CurvePlot JSON, as written under plots/ by wlgen paper)")
		svgPath   = flag.String("svg", "", "with -curve: write an SVG rendering here instead of ASCII")
		hi        = flag.Float64("hi", 100, "x-axis upper bound")
		width     = flag.Int("width", 60, "plot width")
		height    = flag.Int("height", 12, "plot height")
	)
	flag.Parse()

	switch {
	case *curvePath != "":
		if err := renderCurve(*curvePath, *svgPath, *width, *height); err != nil {
			fail(err)
		}
	case *expMean > 0:
		d, err := dist.NewExponential(*expMean)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.Density(d, 0, *hi, *width, *height,
			fmt.Sprintf("f(x) = exp(%g, x)", *expMean)))
	case *specPath != "":
		spec, err := config.Load(*specPath)
		if err != nil {
			fail(err)
		}
		plotSpec("access_size", spec.AccessSize, *width, *height)
		for _, u := range spec.UserTypes {
			plotSpec("think_time["+u.Name+"]", u.ThinkTime, *width, *height)
		}
		for _, c := range spec.Categories {
			plotSpec("file_size["+c.Name()+"]", c.FileSize, *width, *height)
		}
	default:
		for _, nd := range gds.Fig51Examples() {
			fmt.Println(report.Density(nd.Dist.(dist.Density), 0, *hi, *width, *height, nd.Label))
		}
		for _, nd := range gds.Fig52Examples() {
			fmt.Println(report.Density(nd.Dist.(dist.Density), 0, *hi, *width, *height, nd.Label))
		}
	}
}

func plotSpec(label string, ds config.DistSpec, width, height int) {
	d, err := gds.Compile(ds)
	if err != nil {
		fail(fmt.Errorf("%s: %w", label, err))
	}
	den, ok := d.(dist.Density)
	if !ok {
		// Tabular or truncated specs: plot via their CDF table's shape.
		t, err := gds.TableOf(d)
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		xs := t.Xs
		fmt.Println(report.Series(xs, t.Ps, width, height, label+" (CDF)", "x", "F(x)"))
		return
	}
	hi := 4 * d.Mean()
	if hi <= 0 {
		hi = 1
	}
	fmt.Println(report.Density(den, 0, hi, width, height, label))
}

// renderCurve loads a serialized report.CurvePlot and re-renders it: ASCII
// to stdout by default, SVG to svgPath with -svg. The SVG bytes are
// deterministic — identical input data yields an identical file.
func renderCurve(path, svgPath string, width, height int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var plot report.CurvePlot
	if err := json.Unmarshal(raw, &plot); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if svgPath != "" {
		// The artifact pipeline's SVG size: a paper column.
		return os.WriteFile(svgPath, []byte(plot.SVG(640, 420)), 0o644)
	}
	fmt.Print(plot.ASCII(width, height))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gdsplot:", err)
	os.Exit(1)
}
