// Command gdsplot renders distribution densities as ASCII plots — the
// Graphic Distribution Specifier's display, sans X11.
//
// Usage:
//
//	gdsplot                       # the thesis's Figure 5.1 and 5.2 examples
//	gdsplot -spec spec.json       # every distribution in an experiment spec
//	gdsplot -exp 1024 -hi 8000    # an exponential with the given mean
package main

import (
	"flag"
	"fmt"
	"os"

	"uswg/internal/config"
	"uswg/internal/dist"
	"uswg/internal/gds"
	"uswg/internal/report"
)

func main() {
	var (
		specPath = flag.String("spec", "", "experiment spec whose distributions to plot")
		expMean  = flag.Float64("exp", 0, "plot an exponential with this mean")
		hi       = flag.Float64("hi", 100, "x-axis upper bound")
		width    = flag.Int("width", 60, "plot width")
		height   = flag.Int("height", 12, "plot height")
	)
	flag.Parse()

	switch {
	case *expMean > 0:
		d, err := dist.NewExponential(*expMean)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.Density(d, 0, *hi, *width, *height,
			fmt.Sprintf("f(x) = exp(%g, x)", *expMean)))
	case *specPath != "":
		spec, err := config.Load(*specPath)
		if err != nil {
			fail(err)
		}
		plotSpec("access_size", spec.AccessSize, *width, *height)
		for _, u := range spec.UserTypes {
			plotSpec("think_time["+u.Name+"]", u.ThinkTime, *width, *height)
		}
		for _, c := range spec.Categories {
			plotSpec("file_size["+c.Name()+"]", c.FileSize, *width, *height)
		}
	default:
		for _, nd := range gds.Fig51Examples() {
			fmt.Println(report.Density(nd.Dist.(dist.Density), 0, *hi, *width, *height, nd.Label))
		}
		for _, nd := range gds.Fig52Examples() {
			fmt.Println(report.Density(nd.Dist.(dist.Density), 0, *hi, *width, *height, nd.Label))
		}
	}
}

func plotSpec(label string, ds config.DistSpec, width, height int) {
	d, err := gds.Compile(ds)
	if err != nil {
		fail(fmt.Errorf("%s: %w", label, err))
	}
	den, ok := d.(dist.Density)
	if !ok {
		// Tabular or truncated specs: plot via their CDF table's shape.
		t, err := gds.TableOf(d)
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		xs := t.Xs
		fmt.Println(report.Series(xs, t.Ps, width, height, label+" (CDF)", "x", "F(x)"))
		return
	}
	hi := 4 * d.Mean()
	if hi <= 0 {
		hi = 1
	}
	fmt.Println(report.Density(den, 0, hi, width, height, label))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gdsplot:", err)
	os.Exit(1)
}
